(* Greedy-coloring scheduler with evenly spread frequencies — no SMT.

   The bottom rung of the serve layer's degradation ladder: when a request
   has burned its whole budget, this still produces a valid schedule in
   graph-coloring time.  Idle qubits take one spread slot per color of the
   connectivity graph (adjacent qubits never park together); interacting
   pairs take one spread slot per color of the crosstalk graph (pairs within
   crosstalk range never share a frequency).  Spreading maximizes the
   uniform separation for the color count instead of solving for the true
   maximum, so fidelity trails the SMT schedulers — the point is bounded
   latency, not optimality. *)

let run ?(crosstalk_distance = 1) device circuit =
  let partition = Device.partition device in
  (* parking: one slot per connectivity color *)
  let qubit_colors = Coloring.welsh_powell (Device.graph device) in
  let parking =
    Freq_alloc.spread ~lo:partition.Partition.parking_lo
      ~hi:partition.Partition.parking_hi
      (Coloring.n_colors qubit_colors)
  in
  let idle_freqs = Array.map (fun c -> parking.(c)) qubit_colors in
  (* interaction: one slot per crosstalk-graph color, same band floor as the
     SMT path (the bottom |alpha| is reserved for CZ partner qubits) *)
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let pair_colors = Coloring.welsh_powell xg.Crosstalk_graph.graph in
  let reserved = (Device.params device).Device.anharmonicity in
  let lo =
    Float.min
      (partition.Partition.interaction_lo +. reserved)
      partition.Partition.interaction_hi
  in
  let interaction =
    Freq_alloc.spread ~lo ~hi:partition.Partition.interaction_hi
      (Coloring.n_colors pair_colors)
  in
  let freq_of_gate app =
    match app.Gate.qubits with
    | [| a; b |] -> interaction.(pair_colors.(Crosstalk_graph.vertex_of_pair xg (a, b)))
    | _ -> assert false
  in
  let steps =
    List.map
      (fun layer -> Step_builder.make device ~idle_freqs ~freq_of_gate layer)
      (Layers.slice circuit)
  in
  ( {
      Schedule.device;
      algorithm = "greedy-spread";
      steps;
      idle_freqs;
      coupler = Schedule.Fixed_coupler;
    },
    [
      ("idle_colors", Pass.Int (Coloring.n_colors qubit_colors));
      ("interaction_colors", Pass.Int (Coloring.n_colors pair_colors));
    ] )

let scheduler : Pass.scheduler =
  (module struct
    let name = "greedy-spread"

    let aliases = [ "greedy"; "gs" ]

    (* not one of the paper's Table I columns: this is the serve fallback *)
    let table1 = false

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      run ~crosstalk_distance:options.Pass.crosstalk_distance device native
  end)
