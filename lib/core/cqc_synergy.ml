(* CQC-style synergistic routing + scheduling (PAPERS.md, Hua et al.):
   SWAP selection and moment packing are one interleaved loop instead of
   two pipeline stages.

   The router is the SABRE-style lookahead of [Mapping.route_lookahead]
   with one addition: a candidate SWAP's score carries a conflict-pressure
   term — [lambda] times the number of crosstalk-graph neighbours its
   coupling has among the couplings active in the current moment burst
   (the two-qubit gates just emitted plus any SWAPs already chosen for this
   blocked round).  Ties and near-ties therefore resolve toward SWAPs that
   will not fight their concurrent peers for spectrum, which is the paper's
   "synergy" between routing and crosstalk-aware scheduling.

   This scheduler declares [consumes = `Logical]: the pass-graph hands it
   the placed but unrouted program and it owns SWAP insertion, native
   decomposition and packing (the packing phase is Murali-style
   threshold-delay at uniform frequencies — CQC is software-only, like
   Murali, so the head-to-head against the frequency-aware schedulers is
   apples-to-apples). *)

(* Seeded fault for the verification harness (docs/DESIGN.md §11): drop the
   conflict-pressure term, reducing SWAP selection to plain depth scoring. *)
let fault_swap_score = lazy (Fault.enabled "cqc-swap-score")

let route ?(window = 8) ?(lambda = 0.5) ?(crosstalk_distance = 1) device circuit =
  let graph = Device.graph device in
  let n_physical = Graph.n_vertices graph in
  if Circuit.n_qubits circuit <> n_physical then
    invalid_arg "Cqc_synergy.route: circuit must already be placed onto the device";
  let lambda = if Lazy.force fault_swap_score then 0.0 else lambda in
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance graph in
  let phys_of_log = Array.init n_physical Fun.id in
  let log_of_phys = Array.init n_physical Fun.id in
  let dist = Paths.all_pairs graph in
  let instrs = Circuit.instructions circuit in
  let queues = Array.init n_physical (fun _ -> Queue.create ()) in
  Array.iter
    (fun app -> Array.iter (fun q -> Queue.add app.Gate.id queues.(q)) app.Gate.qubits)
    instrs;
  let ready app =
    Array.for_all
      (fun q -> (not (Queue.is_empty queues.(q))) && Queue.peek queues.(q) = app.Gate.id)
      app.Gate.qubits
  in
  let remaining = ref (Array.length instrs) in
  let b = Circuit.builder n_physical in
  let n_swaps = ref 0 in
  let conflict_total = ref 0 in
  let last_swap = ref (-1, -1) in
  (* the concurrent-moment burst: crosstalk-graph vertices of the two-qubit
     operations that will share a moment with the next SWAP.  The first
     emission of each flush round starts a fresh burst; SWAPs join it. *)
  let burst = ref [] in
  let fresh = ref false in
  let coupling_vertex p q = Crosstalk_graph.vertex_of_pair xg (min p q, max p q) in
  let emit app =
    if !fresh then begin
      burst := [];
      fresh := false
    end;
    let mapped = List.map (fun q -> phys_of_log.(q)) (Array.to_list app.Gate.qubits) in
    Circuit.add b app.Gate.gate mapped;
    (match mapped with [ p; q ] -> burst := coupling_vertex p q :: !burst | _ -> ());
    Array.iter (fun q -> ignore (Queue.pop queues.(q))) app.Gate.qubits;
    decr remaining
  in
  let apply_swap p q =
    Circuit.add b Gate.Swap [ p; q ];
    incr n_swaps;
    burst := coupling_vertex p q :: !burst;
    last_swap := (min p q, max p q);
    let lp = log_of_phys.(p) and lq = log_of_phys.(q) in
    log_of_phys.(p) <- lq;
    log_of_phys.(q) <- lp;
    if lq >= 0 then phys_of_log.(lq) <- p;
    if lp >= 0 then phys_of_log.(lp) <- q
  in
  let pair_distance (a, bq) = dist.(phys_of_log.(a)).(phys_of_log.(bq)) in
  let gate_pair app = (app.Gate.qubits.(0), app.Gate.qubits.(1)) in
  let swap_budget = 4 * Array.length instrs * (Paths.diameter graph + n_physical + 2) in
  while !remaining > 0 do
    (* flush everything currently executable *)
    fresh := true;
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iter
        (fun app ->
          if ready app then
            match app.Gate.qubits with
            | [| _ |] ->
              emit app;
              progress := true
            | [| a; bq |] ->
              let d = dist.(phys_of_log.(a)).(phys_of_log.(bq)) in
              if d < 0 then invalid_arg "Cqc_synergy.route: operands are disconnected"
              else if d = 1 then begin
                emit app;
                progress := true
              end
            | _ -> ())
        instrs
    done;
    if !remaining > 0 then begin
      if !n_swaps > swap_budget then
        failwith "Cqc_synergy.route: swap budget exhausted (routing livelock)";
      let front =
        Array.to_list instrs
        |> List.filter (fun app ->
               Array.length app.Gate.qubits = 2 && ready app && pair_distance (gate_pair app) > 1)
        |> List.map gate_pair
      in
      assert (front <> []);
      let upcoming =
        let acc = ref [] and count = ref 0 in
        Array.iter
          (fun app ->
            if
              !count < window
              && Array.length app.Gate.qubits = 2
              && (not (Queue.is_empty queues.(app.Gate.qubits.(0))))
              && Queue.peek queues.(app.Gate.qubits.(0)) <= app.Gate.id
            then begin
              acc := gate_pair app :: !acc;
              incr count
            end)
          instrs;
        List.rev !acc
      in
      let score () =
        List.fold_left (fun acc pair -> acc +. float_of_int (pair_distance pair)) 0.0 front
        +. (0.5
           *. List.fold_left
                (fun acc pair -> acc +. float_of_int (pair_distance pair))
                0.0 upcoming)
      in
      let current = score () in
      let candidates =
        List.concat_map
          (fun (a, bq) ->
            List.concat_map
              (fun logical ->
                let p = phys_of_log.(logical) in
                List.map (fun q -> (min p q, max p q)) (Graph.neighbors graph p))
              [ a; bq ])
          front
        |> List.sort_uniq compare
        |> List.filter (fun pq -> pq <> !last_swap)
      in
      let conflict (p, q) = Crosstalk_graph.conflict_count xg (coupling_vertex p q) !burst in
      let trial (p, q) =
        let lp = log_of_phys.(p) and lq = log_of_phys.(q) in
        log_of_phys.(p) <- lq;
        log_of_phys.(q) <- lp;
        if lq >= 0 then phys_of_log.(lq) <- p;
        if lp >= 0 then phys_of_log.(lp) <- q;
        let s = score () in
        log_of_phys.(p) <- lp;
        log_of_phys.(q) <- lq;
        if lq >= 0 then phys_of_log.(lq) <- q;
        if lp >= 0 then phys_of_log.(lp) <- p;
        (* depth gain plus spectrum pressure: the synergy term *)
        s +. (lambda *. float_of_int (conflict (p, q)))
      in
      let best =
        List.fold_left
          (fun acc pq ->
            let s = trial pq in
            match acc with Some (_, s') when s' <= s -> acc | _ -> Some (pq, s))
          None candidates
      in
      match best with
      | Some ((p, q), s) when s < current -. 1e-9 ->
        conflict_total := !conflict_total + conflict (p, q);
        apply_swap p q
      | _ -> (
        let a, bq = List.hd front in
        match Paths.shortest_path graph phys_of_log.(a) phys_of_log.(bq) with
        | Some (p0 :: p1 :: _) ->
          last_swap := (-1, -1);
          conflict_total := !conflict_total + conflict (p0, p1);
          apply_swap p0 p1
        | _ -> invalid_arg "Cqc_synergy.route: operands are disconnected")
    end
  done;
  ( {
      Mapping.circuit = Circuit.finish b;
      initial = Array.init n_physical Fun.id;
      final = Array.copy phys_of_log;
      n_swaps = !n_swaps;
    },
    !conflict_total )

type run_stats = { n_swaps : int; conflict_total : int; delayed : int }

let run ?window ?lambda ?(threshold = 1e-4) ?(decomposition = Decompose.Hybrid)
    ?(crosstalk_distance = 1) device placed =
  let result, conflict_total = route ?window ?lambda ~crosstalk_distance device placed in
  let native = Decompose.run decomposition result.Mapping.circuit in
  let sched, delayed = Murali_delay.pack ~threshold ~algorithm:"cqc-synergy" device native in
  (sched, { n_swaps = result.Mapping.n_swaps; conflict_total; delayed })

let scheduler : Pass.scheduler =
  (module struct
    let name = "cqc-synergy"

    let aliases = [ "cqc"; "cs" ]

    let table1 = false

    let consumes = `Logical

    let schedule (options : Pass.options) device placed =
      let sched, stats =
        run ~threshold:options.Pass.delay_threshold
          ~decomposition:options.Pass.decomposition
          ~crosstalk_distance:options.Pass.crosstalk_distance device placed
      in
      ( sched,
        [
          ("swaps", Pass.Int stats.n_swaps);
          ("conflict_total", Pass.Int stats.conflict_total);
          ("delayed", Pass.Int stats.delayed);
          ("steps", Pass.Int (Schedule.depth sched));
        ] )
  end)
