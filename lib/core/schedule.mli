(** Compiled schedules: gates plus qubit frequencies per time step, and the
    noise metrics computed over them (paper eq 4, Figs 9/10).

    A schedule is the output of every compilation algorithm: a sequence of
    steps, each holding the native gates that execute simultaneously, the
    0-1 frequency of {e every} qubit during the step, the intentionally
    resonant pairs, and the step duration.  Evaluation walks the steps and
    accumulates three error families:

    - {e gate control errors}: the per-gate base error plus a flux-noise term
      proportional to the transmon's flux sensitivity at its operating point;
    - {e crosstalk errors}: per two-qubit gate, the combined
      unwanted-exchange probability over its {e spectator couplings} — every
      coupling from one of its operands to a third qubit (plus parasitic
      distance-2 partners when evaluated at distance 2), at the step's
      frequencies over the step duration ({!Fastsc_noise.Crosstalk}).  This
      is eq 4's per-gate [eps_g]; residual coupling between two parked
      qubits is a bounded coherent oscillation at parking separations and is
      deliberately not accumulated (the trajectory simulator, which models
      it exactly, confirms it is negligible);
    - {e decoherence}: per qubit over the total program duration
      ({!Fastsc_noise.Decoherence}).

    The same schedule can be lowered to trajectory-simulator steps
    ({!to_noisy_steps}) for the §VI-C validation of the heuristic. *)

type step = {
  gates : Gate.application list;  (** Qubit-disjoint native gates. *)
  freqs : float array;  (** omega_01 of every qubit, GHz. *)
  interacting : (int * int) list;  (** Pairs on intentional resonance. *)
  duration : float;  (** ns. *)
}

type coupler_model =
  | Fixed_coupler  (** Always-on capacitive coupling (this work's target). *)
  | Tunable_coupler of float
      (** Gmon: couplers off except for interacting pairs; the float is the
          residual coupling ratio eta (0 = perfect deactivation, Fig 12). *)

type t = {
  device : Device.t;
  algorithm : string;  (** Producer label for reports. *)
  steps : step list;
  idle_freqs : float array;  (** Parking frequency of each qubit. *)
  coupler : coupler_model;
}

val depth : t -> int

val total_time : t -> float

val n_gates : t -> int

val n_two_qubit_gates : t -> int

type metrics = {
  success : float;
  log10_success : float;
  gate_error : float;  (** [1 - prod (1 - eps)] over control-error terms. *)
  crosstalk_error : float;  (** Same over unwanted-interaction terms. *)
  decoherence_error : float;  (** Same over per-qubit decoherence terms. *)
  log10_gate_survival : float;
      (** [log10 prod (1 - eps)] per error family — unlike the [1 - prod]
          forms these do not saturate at 1 and remain comparable between
          algorithms on deep circuits. *)
  log10_crosstalk_survival : float;
  log10_decoherence_survival : float;
  depth : int;
  total_time : float;
  n_gates : int;
  n_two_qubit : int;
}

val used_qubits : t -> int list
(** Qubits touched by at least one gate, ascending.  Decoherence is charged
    only to these: spare device qubits sit in |0>, which neither relaxes nor
    carries phase information. *)

val step_errors : ?worst_case:bool -> ?crosstalk_distance:int -> t -> step -> float * float
(** [(gate control error, crosstalk error)] of one step in isolation, each as
    [1 - prod (1 - eps)] — the building block of the per-step error budget. *)

val evaluate :
  ?worst_case:bool ->
  ?crosstalk_distance:int ->
  ?decoherence:Decoherence.model ->
  ?coherence:(int -> float * float) ->
  t -> metrics
(** Worst-case program success estimation (eq 4).  [worst_case] (default
    false) replaces the time-dependent transfer probability with its peak
    envelope; [crosstalk_distance] (default 1) set to 2 adds parasitic
    distance-2 spectators; [decoherence] defaults to the standard
    exponential model (see DESIGN.md).  [coherence] overrides the per-qubit
    [(t1, t2)] used for the decoherence term — by default the device's bare
    tables; pass {!Calibration.coherence} to charge flux-noise dephasing at
    each qubit's parking point instead (the calibration-backed evaluation
    the shootout bench uses). *)

val check : t -> (unit, string) result
(** Structural invariants: per-step gates are qubit-disjoint; every
    interacting pair is a device coupling carrying a two-qubit gate at a
    valid resonance; every frequency is within its transmon's tunable range;
    durations are positive. *)

val to_noisy_steps : ?crosstalk_distance:int -> t -> Fastsc_quantum.Noisy_sim.step list
(** Lower the schedule for Monte-Carlo validation: intended gates as
    unitaries, spectator-pair coherent exchanges (angle matching the
    channel's transfer probability) and per-qubit Pauli noise per step. *)

val flux_profile : t -> int -> float list
(** The external-flux waveform of one qubit across steps (one value per
    step) — what a control system would actually play; demonstrates the
    schedule is physically realisable. *)

val pp_step : Device.t -> Format.formatter -> step -> unit

val pp_summary : Format.formatter -> t -> unit
