(** Baseline U: one shared interaction frequency, serialization for safety
    (paper Table I).

    The strategy of fixed-frequency systems (IBM-style, §III): since every
    two-qubit gate uses the same interaction frequency, any two gates within
    crosstalk range collide spectrally — Table I's "serial scheduler" runs
    two-qubit gates one at a time (single-qubit gates still execute in
    parallel).  Crosstalk-free, but the forced serialization deepens the
    circuit and decoherence grows with execution time (Fig 10). *)

val run : ?crosstalk_distance:int -> Device.t -> Circuit.t -> Schedule.t
(** Queueing scheduler: ready gates are served by criticality; at most one
    two-qubit gate executes per step. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["baseline-u"], aliases
    ["uniform"]/["u"]); reads [crosstalk_distance] from the pipeline options.
    Registered by {!Compile}. *)
