let run ?crosstalk_distance ?max_colors ?conflict_threshold ?(residual_coupling = 0.0)
    ?warm_start ?decompose device circuit =
  let schedule, stats =
    Color_dynamic.run ?crosstalk_distance ?max_colors ?conflict_threshold ?warm_start
      ?decompose device circuit
  in
  ( {
      schedule with
      Schedule.algorithm = "gmon-dynamic";
      coupler = Schedule.Tunable_coupler residual_coupling;
    },
    stats )

let scheduler : Pass.scheduler =
  (module struct
    let name = "gmon-dynamic"

    let aliases = [ "gmondynamic"; "gd" ]

    let table1 = false

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      let schedule, stats =
        run ~crosstalk_distance:options.Pass.crosstalk_distance
          ~max_colors:options.Pass.max_colors
          ~conflict_threshold:options.Pass.conflict_threshold
          ~residual_coupling:options.Pass.residual_coupling
          ~warm_start:options.Pass.warm_start
          ~decompose:options.Pass.decompose_components device native
      in
      (schedule, Color_dynamic.pass_stats stats)
  end)
