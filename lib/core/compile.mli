(** Front door of the compiler: algorithm zoo + shared pipeline
    (paper Table I, §VI-A).

    [run] takes a {e logical} circuit (arbitrary qubit pairs, CNOT/SWAP
    allowed), routes it onto the device ({!Fastsc_quantum.Mapping}),
    decomposes it into native gates ({!Fastsc_quantum.Decompose}), and
    schedules it with the selected algorithm.  All evaluation figures of the
    paper drive this entry point.

    Since the pass-manager refactor this module is a thin wrapper over
    {!Pass}: the stages run as an instrumented pipeline, the algorithms live
    in the {!Pass} scheduler registry (this module registers the built-in
    zoo at load time), and the algorithm lists and string parsing derive
    from that registry.  Callers who need intermediate artifacts, per-pass
    timings or per-compilation scheduler statistics (what [run_with_stats]
    used to special-case for ColorDynamic) use {!Pass.execute} and read the
    returned context. *)

type algorithm =
  | Naive  (** Baseline N. *)
  | Gmon  (** Baseline G (tunable couplers). *)
  | Uniform  (** Baseline U (single frequency + serialization). *)
  | Static  (** Baseline S (static crosstalk-graph coloring). *)
  | Color_dynamic  (** This work. *)
  | Gmon_dynamic
      (** Extension (paper §VIII): ColorDynamic scheduling on tunable-coupler
          hardware. *)
  | Anneal_dynamic
      (** Extension (paper §III's [31] comparison): direct per-step frequency
          annealing, Snake-optimizer style. *)
  | Murali_delay
      (** Rival compiler (PAPERS.md, Murali et al. ASPLOS 2020):
          software-only crosstalk-adaptive scheduling — static uniform
          frequencies, conflicting simultaneous gates delayed instead of
          detuned. *)
  | Cqc_synergy
      (** Rival compiler (PAPERS.md, CQC): synergistic routing+scheduling —
          SWAP selection scored by depth {e and} crosstalk-graph conflict
          pressure, interleaved with scheduling. *)

val all_algorithms : algorithm list
(** The registered schedulers with [table1 = true], in registration order —
    the paper's Table I evaluation columns (five as of the paper; the count
    follows the registry, not this comment). *)

val extended_algorithms : algorithm list
(** Every registered scheduler backed by an [algorithm] constructor, in
    registration order: Table I, the extensions, and the rival-compiler zoo
    (murali-delay, cqc-synergy).  [greedy-spread], the serve fallback, is
    registry-only and has no constructor. *)

val algorithm_to_string : algorithm -> string
(** The canonical registry name (e.g. ["color-dynamic"]). *)

val algorithm_of_string : string -> algorithm option
(** Parse a canonical name or any registry alias (e.g. ["cd"]). *)

type options = Pass.options = {
  decomposition : Decompose.strategy;  (** Default [Hybrid] (§V-B5). *)
  crosstalk_distance : int;  (** The [d] of G_x^(d); default 1. *)
  max_colors : int option;  (** Per-step color cap (Fig 11); default none. *)
  conflict_threshold : int;  (** noise_conflict neighbour cap; default 2. *)
  residual_coupling : float;  (** Gmon coupler leakage eta (Fig 12); default 0. *)
  placement : [ `Identity | `Degree | `Coherence | `Auto ];
      (** Initial mapping heuristic; [`Auto] (default) routes with identity
          and degree placements and keeps whichever inserts fewer SWAPs —
          device-native circuits (XEB) stay in place, hub-shaped circuits
          (BV) get packed.  [`Coherence] is the variability-aware policy:
          busiest logical qubits on the best-coherence physical qubits
          (matters when the device has spare qubits). *)
  optimize : bool;
      (** Run the peephole optimizer ({!Optimize}) after decomposition;
          default false so the evaluation matches the paper's unoptimized
          pipeline (the `ablate-optimize` bench measures the benefit). *)
  router : string;
      (** Name or alias of the registered {!Pass.ROUTER}: ["greedy"]
          (per-gate shortest paths) or ["lookahead"] (SABRE-style lookahead
          scoring, the default; the `ablate-router` bench measures the
          difference).  Third-party routers register via
          {!Pass.register_router}. *)
  delay_threshold : float;
      (** Crosstalk pair-error budget for the software-only rival schedulers
          (murali-delay, cqc-synergy): simultaneous gate pairs whose modeled
          crosstalk error exceeds it are serialized; default [1e-4]. *)
  warm_start : bool;
      (** Warm-start each moment's frequency solve from the previous moment's
          witness (default false; witnesses may differ within the solver
          tolerance, so the default keeps golden outputs byte-identical). *)
  decompose_components : bool;
      (** Solve independent crosstalk components of each moment separately on
          the domain pool (default false, same golden-output rationale). *)
}
(** Pipeline options — the same record as {!Pass.options}, re-exported so
    existing [Compile.default_options]-based code keeps working. *)

val default_options : options

val prepare : options -> Device.t -> Circuit.t -> Circuit.t
(** Route + decompose (the [place -> route -> decompose -> optimize] prefix
    of the pipeline): returns the physical native-gate circuit every
    scheduler consumes.  Exposed so ablations can share one preparation. *)

val schedule_native : options -> algorithm -> Device.t -> Circuit.t -> Schedule.t
(** Schedule an already-prepared (routed, native) circuit with the registered
    scheduler for [algorithm]. *)

val run : ?options:options -> algorithm -> Device.t -> Circuit.t -> Schedule.t
(** The full pipeline ({!Pass.execute} through the schedule stage). *)
