(** CQC-style synergistic routing + scheduling (rival compiler zoo;
    PAPERS.md).

    A [`Logical]-consuming scheduler: the pass-graph hands it the placed but
    unrouted program and it owns SWAP insertion, decomposition and moment
    packing.  SWAP candidates are scored by SABRE-style depth lookahead
    {e plus} [lambda] times the crosstalk-graph conflict pressure of the
    SWAP's coupling against the current moment burst, so routing avoids
    creating the spectrum collisions the scheduler would otherwise have to
    delay around.  Packing is Murali-style threshold delay at uniform
    frequencies ({!Murali_delay.pack}) — CQC is software-only.  Registered
    as ["cqc-synergy"] (aliases ["cqc"], ["cs"]). *)

val route :
  ?window:int ->
  ?lambda:float ->
  ?crosstalk_distance:int ->
  Device.t -> Circuit.t -> Mapping.result * int
(** Crosstalk-aware lookahead routing of an already-placed (device-width)
    circuit.  [window] (default 8) is the lookahead depth, [lambda] (default
    0.5) the conflict-pressure weight — [lambda = 0.0] reduces to plain
    depth scoring.  Returns the routing and the total conflict pressure of
    the chosen SWAPs (exposed for the directed fault tests).
    @raise Invalid_argument if the circuit width differs from the device's. *)

type run_stats = { n_swaps : int; conflict_total : int; delayed : int }

val run :
  ?window:int ->
  ?lambda:float ->
  ?threshold:float ->
  ?decomposition:Decompose.strategy ->
  ?crosstalk_distance:int ->
  Device.t -> Circuit.t -> Schedule.t * run_stats
(** Route, decompose, then threshold-pack; the full synergistic pipeline. *)

val scheduler : Pass.scheduler
(** The registry entry ([consumes = `Logical]; {!Compile} registers it at
    load time). *)
