(** AnnealDynamic: direct continuous frequency optimization, in the style of
    the Snake optimizer used on Google's Sycamore (Klimov et al. [31]).

    The paper positions ColorDynamic against this family: "[31] outlines the
    frequency optimizer used in [2].  Our results show comparable performance
    to [31] but with simpler hardware [and machinery]" (§III).  This module
    makes the comparison concrete: it schedules with maximum qubit-disjoint
    parallelism (no serialization) and, for every step, assigns each
    two-qubit gate its own interaction frequency by simulated annealing on
    the {e actual} predicted step error (the same spectator-channel model the
    evaluator uses) — no graphs, no colors, no solver.

    Expectation (borne out by the `ext-anneal` bench): success comparable to
    ColorDynamic, compile time one to two orders of magnitude higher — the
    paper's scalability argument for the coloring decomposition. *)

val run :
  ?iterations:int ->
  ?seed:int ->
  Device.t -> Circuit.t -> Schedule.t
(** [iterations] is the annealing budget per step (default 400); [seed]
    (default 0) makes the stochastic search reproducible. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["anneal-dynamic"], aliases
    ["annealdynamic"]/["ad"]); registered by {!Compile}. *)
