let run device circuit =
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let omega_int = Step_builder.interaction_center device in
  let steps =
    List.map
      (fun layer ->
        Step_builder.make device ~idle_freqs ~freq_of_gate:(fun _ -> omega_int) layer)
      (Layers.slice circuit)
  in
  {
    Schedule.device;
    algorithm = "baseline-n";
    steps;
    idle_freqs;
    coupler = Schedule.Fixed_coupler;
  }

let scheduler : Pass.scheduler =
  (module struct
    let name = "baseline-n"

    let aliases = [ "naive"; "n" ]

    let table1 = true

    let consumes = `Native

    let schedule (_ : Pass.options) device native = (run device native, [])
  end)
