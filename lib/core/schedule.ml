open Fastsc_physics

type step = {
  gates : Gate.application list;
  freqs : float array;
  interacting : (int * int) list;
  duration : float;
}

type coupler_model = Fixed_coupler | Tunable_coupler of float

type t = {
  device : Device.t;
  algorithm : string;
  steps : step list;
  idle_freqs : float array;
  coupler : coupler_model;
}

let depth t = List.length t.steps

let total_time t = List.fold_left (fun acc s -> acc +. s.duration) 0.0 t.steps

let n_gates t = List.fold_left (fun acc s -> acc + List.length s.gates) 0 t.steps

let n_two_qubit_gates t =
  List.fold_left
    (fun acc s ->
      acc + List.length (List.filter (fun g -> Gate.is_two_qubit g.Gate.gate) s.gates))
    0 t.steps

let used_qubits t =
  let used = Array.make (Device.n_qubits t.device) false in
  List.iter
    (fun step ->
      List.iter
        (fun app -> Array.iter (fun q -> used.(q) <- true) app.Gate.qubits)
        step.gates)
    t.steps;
  let acc = ref [] in
  for q = Array.length used - 1 downto 0 do
    if used.(q) then acc := q :: !acc
  done;
  !acc

type metrics = {
  success : float;
  log10_success : float;
  gate_error : float;
  crosstalk_error : float;
  decoherence_error : float;
  log10_gate_survival : float;
  log10_crosstalk_survival : float;
  log10_decoherence_survival : float;
  depth : int;
  total_time : float;
  n_gates : int;
  n_two_qubit : int;
}

let pair_interacting step (a, b) =
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) step.interacting

let pair_coupling t step (a, b) =
  let g0 = (Device.params t.device).Device.g0 in
  match t.coupler with
  | Fixed_coupler -> g0
  | Tunable_coupler eta -> if pair_interacting step (a, b) then g0 else eta *. g0

(* Flux-noise-induced control error for one qubit operating at [freq] for
   [duration] ns: frequency jitter = sensitivity * flux noise, accumulated as
   a coherent phase error. *)
let flux_error device q ~freq ~duration =
  let tr = Device.transmon device q in
  let freq_clamped = Float.max tr.Transmon.omega_min (Float.min tr.Transmon.omega_max freq) in
  let flux = Transmon.flux_for_freq tr freq_clamped in
  let sensitivity = Transmon.flux_sensitivity tr ~flux in
  let jitter = sensitivity *. (Device.params device).Device.flux_noise in
  let phase = 2.0 *. Float.pi *. jitter *. duration in
  Float.min 0.5 (phase *. phase /. 4.0)

(* Spectator partners of a two-qubit gate on (a, b): every other qubit
   coupled (or, at distance 2, parasitically coupled) to one of its
   operands.  Per eq 4, crosstalk is charged per gate over its spectator
   couplings — the residual exchange between two {e parked} qubits is a
   bounded coherent oscillation at large detuning and is not accumulated. *)
let spectators t ~crosstalk_distance (a, b) =
  let n = Device.n_qubits t.device in
  let acc = ref [] in
  for y = 0 to n - 1 do
    if y <> a && y <> b then begin
      let consider x =
        let g = Device.coupling t.device x y in
        let distance_ok =
          g > 0.0
          && (crosstalk_distance >= 2 || g >= (Device.params t.device).Device.g0)
        in
        if distance_ok then acc := (x, y) :: !acc
      in
      consider a;
      consider b
    end
  done;
  !acc

(* Fold one step's gate-control and crosstalk error terms into the
   accumulators — shared by whole-schedule evaluation and the per-step
   error budget. *)
let accumulate_step t ~worst_case ~crosstalk_distance gate_acc xtalk_acc step =
  let params = Device.params t.device in
  let alpha q = Transmon.anharmonicity (Device.transmon t.device q) in
  List.iter
    (fun app ->
      (* Control error of the intended gate. *)
      let base =
        if Gate.is_two_qubit app.Gate.gate then params.Device.base_error_2q
        else params.Device.base_error_1q
      in
      Success.add_error gate_acc base;
      Array.iter
        (fun q ->
          Success.add_error gate_acc
            (flux_error t.device q ~freq:step.freqs.(q) ~duration:step.duration))
        app.Gate.qubits;
      (* Crosstalk of a two-qubit gate through its spectator couplings
         (eq 6 generalised to all resonance channels). *)
      match app.Gate.qubits with
      | [| a; b |] ->
        List.iter
          (fun (x, y) ->
            if not (pair_interacting step (x, y)) then begin
              (* direct couplings go through the (possibly deactivated)
                 coupler; parasitic distance-2 coupling bypasses it *)
              let direct = Device.coupling t.device x y in
              let g =
                if direct >= params.Device.g0 then pair_coupling t step (x, y) else direct
              in
              if g > 0.0 then
                Success.add_error xtalk_acc
                  (Crosstalk.pair_error ~worst_case ~alpha_a:(alpha x) ~alpha_b:(alpha y)
                     ~g ~omega_a:step.freqs.(x) ~omega_b:step.freqs.(y) ~t:step.duration ())
            end)
          (spectators t ~crosstalk_distance (a, b))
      | _ -> ())
    step.gates

let step_errors ?(worst_case = false) ?(crosstalk_distance = 1) t step =
  let gate_acc = Success.create () in
  let xtalk_acc = Success.create () in
  accumulate_step t ~worst_case ~crosstalk_distance gate_acc xtalk_acc step;
  (1.0 -. Success.probability gate_acc, 1.0 -. Success.probability xtalk_acc)

(* Seeded fault for the verification harness (docs/DESIGN.md §11). *)
let fault_xtalk_drop = lazy (Fault.enabled "sched-xtalk-drop")

let evaluate ?(worst_case = false) ?(crosstalk_distance = 1)
    ?(decoherence = Decoherence.Exponential) ?coherence t =
  let gate_acc = Success.create () in
  let xtalk_acc = Success.create () in
  let dec_acc = Success.create () in
  List.iter (accumulate_step t ~worst_case ~crosstalk_distance gate_acc xtalk_acc) t.steps;
  let xtalk_acc = if Lazy.force fault_xtalk_drop then Success.create () else xtalk_acc in
  let duration = total_time t in
  let qubit_coherence =
    match coherence with
    | Some f -> f
    | None -> fun q -> (Device.t1 t.device q, Device.t2 t.device q)
  in
  (* only qubits that ever carry program state decohere it; spare device
     qubits sit in |0> where T1 decay and dephasing are harmless *)
  List.iter
    (fun q ->
      let t1, t2 = qubit_coherence q in
      Success.add_error dec_acc (Decoherence.error ~model:decoherence ~t1 ~t2 ~t:duration ()))
    (used_qubits t);
  let total = Success.combine gate_acc (Success.combine xtalk_acc dec_acc) in
  {
    success = Success.probability total;
    log10_success = Success.log10_probability total;
    gate_error = 1.0 -. Success.probability gate_acc;
    crosstalk_error = 1.0 -. Success.probability xtalk_acc;
    decoherence_error = 1.0 -. Success.probability dec_acc;
    log10_gate_survival = Success.log10_probability gate_acc;
    log10_crosstalk_survival = Success.log10_probability xtalk_acc;
    log10_decoherence_survival = Success.log10_probability dec_acc;
    depth = depth t;
    total_time = duration;
    n_gates = n_gates t;
    n_two_qubit = n_two_qubit_gates t;
  }

let resonance_ok device step (a, b) =
  (* The pair must carry a two-qubit gate whose resonance condition the
     frequencies satisfy. *)
  let tol = 1e-6 in
  let gate =
    List.find_opt
      (fun app ->
        Gate.is_two_qubit app.Gate.gate
        && (app.Gate.qubits = [| a; b |] || app.Gate.qubits = [| b; a |]))
      step.gates
  in
  match gate with
  | None -> Error (Printf.sprintf "interacting pair (%d,%d) has no two-qubit gate" a b)
  | Some app ->
    let fa = step.freqs.(a) and fb = step.freqs.(b) in
    let alpha q = Transmon.anharmonicity (Device.transmon device q) in
    let ok =
      match app.Gate.gate with
      | Gate.Iswap | Gate.Sqrt_iswap | Gate.Xy _ -> Float.abs (fa -. fb) < tol
      | Gate.Cz ->
        Float.abs (fa +. alpha a -. fb) < tol || Float.abs (fb +. alpha b -. fa) < tol
      | _ -> false
    in
    if ok then Ok ()
    else
      Error
        (Printf.sprintf "pair (%d,%d) not on %s resonance (%.4f vs %.4f)" a b
           (Gate.name app.Gate.gate) fa fb)

let check t =
  let n = Device.n_qubits t.device in
  let graph = Device.graph t.device in
  let exception Bad of string in
  try
    List.iteri
      (fun i step ->
        let fail msg = raise (Bad (Printf.sprintf "step %d: %s" i msg)) in
        if Array.length step.freqs <> n then fail "frequency array size mismatch";
        if step.duration <= 0.0 then fail "non-positive duration";
        (* qubit-disjointness *)
        let used = Array.make n false in
        List.iter
          (fun app ->
            Array.iter
              (fun q ->
                if used.(q) then fail (Printf.sprintf "qubit %d used twice" q);
                used.(q) <- true)
              app.Gate.qubits;
            if not (Gate.is_native app.Gate.gate) then
              fail (Printf.sprintf "non-native gate %s" (Gate.name app.Gate.gate));
            match app.Gate.qubits with
            | [| a; b |] ->
              if not (Graph.mem_edge graph a b) then
                fail (Printf.sprintf "gate on uncoupled pair (%d,%d)" a b);
              if not (pair_interacting step (a, b)) then
                fail (Printf.sprintf "two-qubit gate on (%d,%d) not marked interacting" a b)
            | _ -> ())
          step.gates;
        List.iter
          (fun (a, b) ->
            if not (Graph.mem_edge graph a b) then
              fail (Printf.sprintf "interacting pair (%d,%d) is not a coupling" a b);
            match resonance_ok t.device step (a, b) with
            | Ok () -> ()
            | Error msg -> fail msg)
          step.interacting;
        for q = 0 to n - 1 do
          let lo, hi = Device.tunable_range t.device q in
          let f = step.freqs.(q) in
          if f < lo -. 1e-9 || f > hi +. 1e-9 then
            fail (Printf.sprintf "qubit %d at %.4f outside tunable range [%.4f, %.4f]" q f lo hi)
        done)
      t.steps;
    Ok ()
  with Bad msg -> Error msg

let to_noisy_steps ?(crosstalk_distance = 1) t =
  let coupled = Device.coupled_pairs t.device in
  let parasitic = if crosstalk_distance >= 2 then Device.distance2_pairs t.device else [] in
  let params = Device.params t.device in
  let alpha q = Transmon.anharmonicity (Device.transmon t.device q) in
  List.map
    (fun step ->
      let unitaries =
        List.map
          (fun app ->
            Fastsc_quantum.Noisy_sim.Unitary (app.Gate.gate, Array.to_list app.Gate.qubits))
          step.gates
      in
      let exchange (a, b) g =
        if g <= 0.0 then None
        else begin
          (* Only the computational 01-01 channel is representable on qubits;
             leakage channels need the qutrit model of Fastsc_physics. *)
          let delta = Float.abs (step.freqs.(a) -. step.freqs.(b)) in
          let p = Crosstalk.transfer_probability ~g ~delta ~t:step.duration in
          ignore (alpha a);
          if p < 1e-15 then None
          else
            Some
              (Fastsc_quantum.Noisy_sim.Partial_exchange
                 { a; b; theta = asin (sqrt (Float.min 1.0 p)) })
        end
      in
      let spectator_exchanges =
        List.filter_map
          (fun (a, b) ->
            if pair_interacting step (a, b) then None
            else exchange (a, b) (pair_coupling t step (a, b)))
          coupled
        @ List.filter_map
            (fun (a, b) -> exchange (a, b) (params.Device.parasitic_ratio *. params.Device.g0))
            parasitic
      in
      let pauli_noise =
        List.init (Device.n_qubits t.device) (fun q ->
            let p_x, p_y, p_z =
              Decoherence.pauli_rates ~t1:(Device.t1 t.device q) ~t2:(Device.t2 t.device q)
                ~t:step.duration
            in
            Fastsc_quantum.Noisy_sim.Pauli_noise { q; p_x; p_y; p_z })
      in
      unitaries @ spectator_exchanges @ pauli_noise)
    t.steps

let flux_profile t q =
  let tr = Device.transmon t.device q in
  List.map
    (fun step ->
      let f =
        Float.max tr.Transmon.omega_min (Float.min tr.Transmon.omega_max step.freqs.(q))
      in
      Transmon.flux_for_freq tr f)
    t.steps

let pp_step device fmt step =
  Format.fprintf fmt "@[<v2>step (%.1f ns):@," step.duration;
  List.iter
    (fun app ->
      Format.fprintf fmt "%s %s@," (Gate.name app.Gate.gate)
        (String.concat "," (List.map string_of_int (Array.to_list app.Gate.qubits))))
    step.gates;
  Format.fprintf fmt "freqs:";
  Array.iteri
    (fun q f -> if q < Device.n_qubits device then Format.fprintf fmt " %d:%.3f" q f)
    step.freqs;
  Format.fprintf fmt "@]"

let pp_summary fmt t =
  Format.fprintf fmt "%s schedule: %d steps, %.1f ns, %d gates (%d two-qubit)" t.algorithm
    (depth t) (total_time t) (n_gates t) (n_two_qubit_gates t)
