(** Frequency assignment from colorings via the separation solver
    (paper §IV-C1, §V-B3).

    Two instances of the same constraint problem:
    - {e idle} (parking) frequencies: one variable per color of the device
      connectivity graph, placed in the parking region;
    - {e interaction} frequencies: one variable per color of the active
      crosstalk subgraph, placed in the interaction region, ordered so that
      busier colors receive higher frequencies (higher frequency means faster
      gates, §V-B3).

    In both cases every pair of variables must be separated by [delta] both
    directly (eq 2) and through the anharmonicity sidebands (eq 3), and
    [smt_find]'s binary search maximises [delta]. *)

type assignment = {
  freqs : float array;  (** [freqs.(color)] in GHz. *)
  delta : float;  (** The achieved pairwise separation. *)
}

type cache_stats = {
  hits : int;  (** Memo-table hits (cold, key-determined solves). *)
  misses : int;  (** Memo-table misses that paid a full binary search. *)
  entries : int;  (** Current table population (bounded by 2^16, recycled). *)
  warm_hits : int;  (** Warm solves whose seed had positive margin. *)
  warm_misses : int;  (** Warm solves that fell back to the cold search. *)
}

val solver_cache_stats : unit -> cache_stats
(** Counters of the memoized separation solver.  Every [find_max_delta]
    binary search is keyed by the canonical problem description (variable
    count, band, anharmonicity, placement order); repeat solves — e.g. the
    same color count appearing in many ColorDynamic cycles — are served from
    a mutex-protected table, so the counters are safe to read while pool
    domains compile.  The table is bounded at [2^16] entries with the same
    reset-on-full recycle discipline as [Crosstalk.pair_error].  Warm-started
    solves bypass the table in both directions (their results depend on the
    seed, not just the key) and are tallied separately as
    [warm_hits]/[warm_misses]. *)

val reset_solver_cache : unit -> unit
(** Drop all memoized solves and zero the counters (tests; also useful when
    measuring cold-compile costs). *)

val export_cache : unit -> Json.t
(** The memo table as a JSON document (entries in sorted key order, so equal
    cache states serialize to equal bytes).  The serve daemon wraps this in
    a checksummed {!Fastsc_util.Snapshot} envelope to persist warm caches
    across restarts. *)

val import_cache : Json.t -> int
(** Merge a document produced by {!export_cache} into the memo table and
    return the number of entries imported.  Malformed entries are skipped
    (a snapshot from an older build costs only what it cannot express);
    counters are untouched.  Returns 0 on a document with no
    ["solver_cache"] list. *)

val idle : Device.t -> Coloring.coloring * assignment
(** Color the connectivity graph (2 colors when bipartite, Welsh–Powell
    otherwise) and solve for parking frequencies.
    @raise Failure if the solver finds no feasible assignment (cannot happen
    for sane partitions; kept as a loud invariant).  The message carries the
    full problem description — color count, band, sideband offset, placement
    order, and the best delta tried — so infeasible configurations coming
    from registry-added algorithms are diagnosable. *)

val idle_per_qubit : Device.t -> float array
(** Convenience over {!idle}: the parking frequency of every qubit. *)

val interaction :
  ?lo:float -> ?hi:float -> ?warm:float array -> ?warm_used:bool ref ->
  Device.t -> n_colors:int -> multiplicity:int array -> assignment
(** Solve for [n_colors] interaction frequencies; [multiplicity.(c)] is the
    number of active couplings colored [c] and orders the result (larger
    multiplicity, higher frequency).  [lo]/[hi] override the interaction
    region (used by ablations).

    [warm] is a previous moment's witness (its [freqs]); when its length
    matches [n_colors] the value multiset is re-sorted along the new
    placement order (the complete-graph problem is permutation-symmetric, so
    feasibility and margin carry over) and seeds the binary search, which
    then opens at the seed's margin instead of delta = 0.  Mismatched or
    infeasible seeds silently fall back to the cold path.  Warm solves
    bypass the memo cache; see {!solver_cache_stats}.  When a length-matched
    seed was attempted, [warm_used] (if given) is set to whether it was
    usable — a per-call channel for schedulers that must count hits without
    reading the process-wide counters (which concurrent cells share).
    @raise Invalid_argument on a size mismatch;
    @raise Failure if infeasible. *)

val spread : lo:float -> hi:float -> int -> float array
(** Evenly spaced fallback frequencies (used by crosstalk-unaware baselines):
    [n] values centered in [\[lo, hi\]]. *)
