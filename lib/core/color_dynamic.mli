(** ColorDynamic: program-specific frequency-aware compilation — the paper's
    main contribution (Algorithm 1, §V).

    Each scheduling cycle:
    + ready gates are considered in criticality order; a two-qubit gate is
      postponed when too many of its crosstalk-graph neighbours are already
      in the cycle ([noise_conflict], line 13) — the noise-aware queueing
      scheduler trading parallelism against frequency crowding;
    + the active subgraph of the crosstalk graph is colored (Welsh–Powell,
      line 19);
    + if a color cap is in force (the tunability sweep of Fig 11), gates of
      the smallest color classes are postponed until the cap holds;
    + the separation solver maps colors to interaction frequencies, busiest
      color highest, maximising the pairwise separation delta (line 20);
    + idle qubits park on their connectivity-coloring frequencies.

    The result is a schedule whose interaction frequencies are tailored to
    every time step of the program. *)

type stats = {
  cycles : int;  (** Scheduling cycles executed. *)
  max_colors_used : int;  (** Largest per-step color count. *)
  postponed : int;  (** Gate placements deferred by noise_conflict or the
                        color cap (a gate may be counted more than once). *)
  min_delta : float;  (** Smallest separation achieved across steps (infinity
                          when no two-qubit gates exist). *)
  components : int;  (** Total crosstalk components across all cycles. *)
  component_max_size : int;  (** Largest component seen (in couplings). *)
  component_sizes : string;  (** Histogram ["size:count ..."], sizes
                                 ascending, across all cycles. *)
  component_solves : int;  (** Frequency solves paid: one per cycle with
                               active gates, or one per component when
                               decomposed allocation is on. *)
  warm_hits : int;  (** Warm seeds accepted (positive margin). *)
  warm_misses : int;  (** Warm attempts that fell back to the cold path. *)
}

val run :
  ?crosstalk_distance:int ->
  ?max_colors:int option ->
  ?conflict_threshold:int ->
  ?colorer:(Graph.t -> Coloring.coloring) ->
  ?warm_start:bool ->
  ?decompose:bool ->
  Device.t -> Circuit.t -> Schedule.t * stats
(** [run device circuit] compiles a routed, native-gate circuit.
    [crosstalk_distance] is the [d] of the crosstalk graph (default 1);
    [max_colors] caps per-step colors (default [None] = uncapped);
    [conflict_threshold] is the neighbour count that triggers postponement
    (default 4); [colorer] is the subgraph-coloring heuristic (default
    {!Coloring.welsh_powell}, per the paper; swappable for ablations).

    [warm_start] (default false) seeds each moment's frequency solve with
    the previous moment's witness ({!Freq_alloc.interaction}'s [warm]);
    [decompose] (default false) allocates each connected component of the
    moment's active crosstalk subgraph independently on the domain pool,
    merged in component order (byte-identical at any job count).  Both
    default off so the paper-mode output stays bit-identical; component
    counts are tracked in {!stats} either way.
    @raise Invalid_argument if [conflict_threshold < 1] or
    [max_colors < Some 1]. *)

val pass_stats : stats -> Pass.stat list
(** The generic pass-manager form of {!stats} ([cycles], [max_colors_used],
    [postponed], [components], [component_max_size], [component_solves],
    [warm_hits], [warm_misses] as [Int]; [min_delta] as [Float];
    [component_sizes] as [Text]) — what [Pass.Context.stats] carries after a
    ColorDynamic compilation.  Also reused by {!Gmon_dynamic}. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["color-dynamic"], aliases
    ["colordynamic"]/["cd"]); reads [crosstalk_distance], [max_colors] and
    [conflict_threshold] from the pipeline options and reports
    {!pass_stats}.  Registered by {!Compile}. *)
