(** ColorDynamic: program-specific frequency-aware compilation — the paper's
    main contribution (Algorithm 1, §V).

    Each scheduling cycle:
    + ready gates are considered in criticality order; a two-qubit gate is
      postponed when too many of its crosstalk-graph neighbours are already
      in the cycle ([noise_conflict], line 13) — the noise-aware queueing
      scheduler trading parallelism against frequency crowding;
    + the active subgraph of the crosstalk graph is colored (Welsh–Powell,
      line 19);
    + if a color cap is in force (the tunability sweep of Fig 11), gates of
      the smallest color classes are postponed until the cap holds;
    + the separation solver maps colors to interaction frequencies, busiest
      color highest, maximising the pairwise separation delta (line 20);
    + idle qubits park on their connectivity-coloring frequencies.

    The result is a schedule whose interaction frequencies are tailored to
    every time step of the program. *)

type stats = {
  cycles : int;  (** Scheduling cycles executed. *)
  max_colors_used : int;  (** Largest per-step color count. *)
  postponed : int;  (** Gate placements deferred by noise_conflict or the
                        color cap (a gate may be counted more than once). *)
  min_delta : float;  (** Smallest separation achieved across steps (infinity
                          when no two-qubit gates exist). *)
}

val run :
  ?crosstalk_distance:int ->
  ?max_colors:int option ->
  ?conflict_threshold:int ->
  ?colorer:(Graph.t -> Coloring.coloring) ->
  Device.t -> Circuit.t -> Schedule.t * stats
(** [run device circuit] compiles a routed, native-gate circuit.
    [crosstalk_distance] is the [d] of the crosstalk graph (default 1);
    [max_colors] caps per-step colors (default [None] = uncapped);
    [conflict_threshold] is the neighbour count that triggers postponement
    (default 4); [colorer] is the subgraph-coloring heuristic (default
    {!Coloring.welsh_powell}, per the paper; swappable for ablations).
    @raise Invalid_argument if [conflict_threshold < 1] or
    [max_colors < Some 1]. *)

val pass_stats : stats -> Pass.stat list
(** The generic pass-manager form of {!stats} ([cycles], [max_colors_used],
    [postponed] as [Int]; [min_delta] as [Float]) — what
    [Pass.Context.stats] carries after a ColorDynamic compilation.  Also
    reused by {!Gmon_dynamic}. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["color-dynamic"], aliases
    ["colordynamic"]/["cd"]); reads [crosstalk_distance], [max_colors] and
    [conflict_threshold] from the pipeline options and reports
    {!pass_stats}.  Registered by {!Compile}. *)
