let is_grid device =
  let topo = Device.topology device in
  let name = topo.Topology.name in
  String.length name >= 3 && String.sub name 0 3 = "2D-" && topo.Topology.coords <> None

let edge_classes device =
  let graph = Device.graph device in
  if is_grid device then begin
    let topo = Device.topology device in
    let coords = Option.get topo.Topology.coords in
    let rows = 1 + Array.fold_left (fun acc (r, _) -> max acc r) 0 coords in
    let cols = 1 + Array.fold_left (fun acc (_, c) -> max acc c) 0 coords in
    List.map
      (fun (edge, cls) ->
        let id = match cls with Topology.A -> 0 | Topology.B -> 1 | Topology.C -> 2 | Topology.D -> 3 in
        (edge, id))
      (Topology.grid_edge_classes rows cols)
  end
  else begin
    (* A proper edge coloring (= vertex coloring of the line graph) gives
       matching classes on any topology. *)
    let line, edge_of_vertex = Line_graph.build graph in
    let coloring = Coloring.welsh_powell line in
    Array.to_list (Array.mapi (fun v edge -> (edge, coloring.(v))) edge_of_vertex)
  end

let run ?(residual_coupling = 0.0) device circuit =
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let omega_int = Step_builder.interaction_center device in
  let classes = edge_classes device in
  let class_of_pair (a, b) =
    let key = (min a b, max a b) in
    match List.assoc_opt key classes with
    | Some c -> c
    | None -> invalid_arg "Baseline_gmon: gate on uncoupled pair"
  in
  let pending = Pending.create circuit in
  let steps = ref [] in
  while not (Pending.is_empty pending) do
    let ready = Pending.ready pending in
    (* Tiling scheduler: activate the coupler class with the most ready
       two-qubit gates this step. *)
    let counts = Hashtbl.create 8 in
    List.iter
      (fun app ->
        match app.Gate.qubits with
        | [| a; b |] ->
          let c = class_of_pair (a, b) in
          Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
        | _ -> ())
      ready;
    let best_class =
      Hashtbl.fold
        (fun c n acc ->
          match acc with
          | Some (_, n') when n' >= n -> acc
          | _ -> Some (c, n))
        counts None
    in
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    List.iter
      (fun app ->
        let free = Array.for_all (fun q -> not used.(q)) app.Gate.qubits in
        let allowed =
          match app.Gate.qubits with
          | [| a; b |] -> (
            match best_class with
            | Some (c, _) -> class_of_pair (a, b) = c
            | None -> false)
          | _ -> true
        in
        if free && allowed then begin
          Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
          chosen := app :: !chosen
        end)
      ready;
    let gates = List.rev !chosen in
    assert (gates <> []);
    List.iter (Pending.schedule pending) gates;
    steps :=
      Step_builder.make device ~idle_freqs ~freq_of_gate:(fun _ -> omega_int) gates :: !steps
  done;
  {
    Schedule.device;
    algorithm = "baseline-g";
    steps = List.rev !steps;
    idle_freqs;
    coupler = Schedule.Tunable_coupler residual_coupling;
  }

let scheduler : Pass.scheduler =
  (module struct
    let name = "baseline-g"

    let aliases = [ "gmon"; "g" ]

    let table1 = true

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      (run ~residual_coupling:options.Pass.residual_coupling device native, [])
  end)
