(** The crosstalk graph G_x^(d) (paper §IV-C2 and Algorithm 2).

    Vertices are the couplings (edges) of the device connectivity graph; two
    vertices are connected when simultaneous two-qubit gates on the
    corresponding couplings could interfere — i.e. when the couplings share a
    qubit or lie within graph distance [d] of each other.  A proper coloring
    of (the active subgraph of) this graph therefore yields sets of couplings
    that may safely share one interaction frequency. *)

type t = {
  graph : Graph.t;  (** The crosstalk graph itself. *)
  edge_of_vertex : (int * int) array;
      (** Vertex [i] corresponds to this device coupling. *)
  distance : int;  (** The [d] it was built with. *)
}

val build : ?distance:int -> Graph.t -> t
(** [build ~distance g] runs Algorithm 2 on connectivity graph [g];
    [distance] defaults to 1 (nearest-neighbour crosstalk).
    @raise Invalid_argument if [distance < 1]. *)

val vertex_of_pair : t -> int * int -> int
(** Index of a device coupling (either endpoint order).
    @raise Not_found if the pair is not a coupling. *)

val conflict_count : t -> int -> int list -> int
(** [conflict_count t v active] counts how many of the [active] vertices are
    adjacent to [v] — the quantity behind the scheduler's [noise_conflict]
    test (Algorithm 1 line 13). *)

val active_subgraph : t -> int list -> Graph.t
(** Subgraph induced by the active couplings of one time step
    (Algorithm 1 line 18). *)

val components_of_active : t -> int list -> int list list
(** Connected components of {!active_subgraph}, restricted to the active
    vertices (each sorted ascending, components by smallest vertex; isolated
    active couplings as singletons).  These are the independent allocation
    subproblems of one moment: couplings in different components share no
    crosstalk edge, so their frequency regions never constrain each other. *)

val max_colors_mesh : int
(** The paper's result (Fig 7): 8 colors suffice for maximum simultaneous
    operation on any 2-D mesh at distance 1. *)
