(** Greedy-coloring scheduler with evenly spread frequencies — no SMT.

    The bottom rung of the serve layer's degradation ladder: produces a
    valid schedule in graph-coloring time, with zero
    {!Fastsc_smt.Smt.find_max_delta} calls.  Idle frequencies are one
    {!Freq_alloc.spread} slot per connectivity-graph color; interaction
    frequencies one slot per crosstalk-graph color.  Registered as
    ["greedy-spread"] (aliases ["greedy"], ["gs"]), excluded from the
    paper's Table I set. *)

val run :
  ?crosstalk_distance:int -> Device.t -> Circuit.t -> Schedule.t * Pass.stat list
(** Schedule an already-routed native-gate circuit.  Reported stats:
    [idle_colors] and [interaction_colors]. *)

val scheduler : Pass.scheduler
