let run ?(crosstalk_distance = 1) device circuit =
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let omega_int = Step_builder.interaction_center device in
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let pending = Pending.create circuit in
  let steps = ref [] in
  while not (Pending.is_empty pending) do
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    let active = ref [] in
    List.iter
      (fun app ->
        let free = Array.for_all (fun q -> not used.(q)) app.Gate.qubits in
        if free then begin
          let accept =
            match app.Gate.qubits with
            | [| a; b |] ->
              (* single shared frequency: at most one two-qubit gate per
                 step anywhere within crosstalk range — on connected devices
                 this serializes two-qubit gates completely (Table I's
                 "serial scheduler") *)
              let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
              if !active = [] && Crosstalk_graph.conflict_count xg v !active = 0 then begin
                active := v :: !active;
                true
              end
              else false
            | _ -> true
          in
          if accept then begin
            Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
            chosen := app :: !chosen
          end
        end)
      (Pending.ready pending);
    let gates = List.rev !chosen in
    assert (gates <> []);
    List.iter (Pending.schedule pending) gates;
    steps :=
      Step_builder.make device ~idle_freqs ~freq_of_gate:(fun _ -> omega_int) gates :: !steps
  done;
  {
    Schedule.device;
    algorithm = "baseline-u";
    steps = List.rev !steps;
    idle_freqs;
    coupler = Schedule.Fixed_coupler;
  }

let scheduler : Pass.scheduler =
  (module struct
    let name = "baseline-u"

    let aliases = [ "uniform"; "u" ]

    let table1 = true

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      (run ~crosstalk_distance:options.Pass.crosstalk_distance device native, [])
  end)
