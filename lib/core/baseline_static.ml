let static_assignment ?(crosstalk_distance = 1) device =
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let coloring = Coloring.welsh_powell xg.Crosstalk_graph.graph in
  let n_colors = Coloring.n_colors coloring in
  let multiplicity = Array.make n_colors 0 in
  Array.iter (fun c -> multiplicity.(c) <- multiplicity.(c) + 1) coloring;
  let assignment = Freq_alloc.interaction device ~n_colors ~multiplicity in
  let freq_of_pair pair =
    let v = Crosstalk_graph.vertex_of_pair xg pair in
    assignment.Freq_alloc.freqs.(coloring.(v))
  in
  (freq_of_pair, n_colors)

let run ?(crosstalk_distance = 1) device circuit =
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let freq_of_pair, _ = static_assignment ~crosstalk_distance device in
  let freq_of_gate app =
    match app.Gate.qubits with
    | [| a; b |] -> freq_of_pair (a, b)
    | _ -> assert false
  in
  let steps =
    List.map
      (fun layer -> Step_builder.make device ~idle_freqs ~freq_of_gate layer)
      (Layers.slice circuit)
  in
  {
    Schedule.device;
    algorithm = "baseline-s";
    steps;
    idle_freqs;
    coupler = Schedule.Fixed_coupler;
  }

let scheduler : Pass.scheduler =
  (module struct
    let name = "baseline-s"

    let aliases = [ "static"; "s" ]

    let table1 = true

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      (run ~crosstalk_distance:options.Pass.crosstalk_distance device native, [])
  end)
