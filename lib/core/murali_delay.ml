(* Murali et al.'s software-only crosstalk-adaptive scheduler (PAPERS.md,
   "Software mitigation of crosstalk on noisy intermediate-scale quantum
   computers", ASPLOS 2020), transplanted onto this repo's device model.

   No frequency tuning: every qubit idles at its fabrication parking
   frequency and every two-qubit gate runs at the shared interaction-region
   midpoint, exactly like Baseline N.  Crosstalk is mitigated purely in
   time — a ready gate whose modeled simultaneous-crosstalk error against
   the gates already accepted into the current moment exceeds
   [delay_threshold] is pushed to a later moment instead of detuned.  The
   idle padding this inserts is not free: the evaluation charges
   decoherence over the schedule's total duration, which is precisely the
   trade-off the paper's frequency-aware schedulers win (Table I). *)

open Fastsc_physics

(* Seeded fault for the verification harness (docs/DESIGN.md §11): flip the
   threshold comparison, so conflicting pairs pack together and distant
   (harmless) pairs serialize. *)
let fault_threshold = lazy (Fault.enabled "murali-delay-threshold")

let simultaneous_error ?(worst_case = false) device ~t (a, b) (c, d) =
  let omega_int = Step_builder.interaction_center device in
  let alpha q = Transmon.anharmonicity (Device.transmon device q) in
  (* Every coupled spectator channel between the two gates' operand sets; at
     the shared interaction frequency any such channel sits on resonance,
     which is the whole reason simultaneity is expensive here. *)
  List.fold_left
    (fun acc x ->
      List.fold_left
        (fun acc y ->
          let g = Device.coupling device x y in
          if g > 0.0 then
            acc
            +. Crosstalk.pair_error ~worst_case ~alpha_a:(alpha x) ~alpha_b:(alpha y) ~g
                 ~omega_a:omega_int ~omega_b:omega_int ~t ()
          else acc)
        acc [ c; d ])
    0.0 [ a; b ]

let pack ?(threshold = 1e-4) ~algorithm device circuit =
  let flipped = Lazy.force fault_threshold in
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let omega_int = Step_builder.interaction_center device in
  let pending = Pending.create circuit in
  let steps = ref [] in
  let delayed = ref 0 in
  while not (Pending.is_empty pending) do
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    (* accepted two-qubit gates of this moment: (operand pair, gate time) *)
    let active = ref [] in
    List.iter
      (fun app ->
        let free = Array.for_all (fun q -> not used.(q)) app.Gate.qubits in
        if free then begin
          let accept =
            match app.Gate.qubits with
            | [| a; b |] ->
              let t_gate = Device.gate_time device app.Gate.gate in
              let ok =
                List.for_all
                  (fun (pair, t_other) ->
                    let err =
                      simultaneous_error device ~t:(Float.max t_gate t_other) (a, b) pair
                    in
                    if flipped then err >= threshold else err <= threshold)
                  !active
              in
              if ok then active := ((a, b), t_gate) :: !active else incr delayed;
              ok
            | _ -> true
          in
          if accept then begin
            Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
            chosen := app :: !chosen
          end
        end)
      (Pending.ready pending);
    let gates = List.rev !chosen in
    (* the highest-criticality ready gate is always accepted (the acceptance
       test is vacuous against an empty moment), so every iteration makes
       progress *)
    assert (gates <> []);
    List.iter (Pending.schedule pending) gates;
    steps :=
      Step_builder.make device ~idle_freqs ~freq_of_gate:(fun _ -> omega_int) gates :: !steps
  done;
  ( {
      Schedule.device;
      algorithm;
      steps = List.rev !steps;
      idle_freqs;
      coupler = Schedule.Fixed_coupler;
    },
    !delayed )

let run ?threshold device circuit = fst (pack ?threshold ~algorithm:"murali-delay" device circuit)

let scheduler : Pass.scheduler =
  (module struct
    let name = "murali-delay"

    let aliases = [ "murali"; "md" ]

    let table1 = false

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      let threshold = options.Pass.delay_threshold in
      let sched, delayed = pack ~threshold ~algorithm:"murali-delay" device native in
      ( sched,
        [
          ("delayed", Pass.Int delayed);
          ("steps", Pass.Int (Schedule.depth sched));
          ("threshold", Pass.Float threshold);
        ] )
  end)
