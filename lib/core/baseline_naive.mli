(** Baseline N: naive, crosstalk-unaware compilation (paper Table I).

    The conventional Qiskit-style flow: ASAP layers with maximum parallelism.
    Idle and interaction frequencies are separated (connectivity coloring for
    parking, one shared interaction frequency), but nothing prevents
    neighbouring two-qubit gates from executing simultaneously on that shared
    frequency — so any circuit with adjacent parallel two-qubit gates pays
    full crosstalk (the collapse visible in Fig 9). *)

val run : Device.t -> Circuit.t -> Schedule.t
(** [run device circuit] schedules a routed, native-gate circuit.  The result
    passes {!Schedule.check}. *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["baseline-n"], aliases
    ["naive"]/["n"]); registered by {!Compile}. *)
