type t = {
  graph : Graph.t;
  edge_of_vertex : (int * int) array;
  distance : int;
}

let build ?(distance = 1) connectivity =
  if distance < 1 then invalid_arg "Crosstalk_graph.build: distance must be >= 1";
  let line, edge_of_vertex = Line_graph.build connectivity in
  (* Algorithm 2: beyond shared endpoints (already in the line graph), connect
     couplings whose endpoints are within [distance] of each other.

     Earlier revisions materialised Paths.all_pairs, whose n^2 distance matrix
     is what actually capped the mesh size (~800 MB at 100x100).  Crosstalk is
     local, so a bounded BFS ball of radius [distance] around each device
     vertex sees exactly the same endpoint pairs: couplings i and j become
     adjacent iff some endpoint of j lies inside the ball of some endpoint of
     i.  The relation is symmetric, so emitting each unordered pair once
     (j > i, as the old double loop did) rebuilds the identical graph. *)
  let n = Graph.n_vertices connectivity in
  let incident = Array.make n [] in
  Array.iteri
    (fun i (u, v) ->
      incident.(u) <- i :: incident.(u);
      incident.(v) <- i :: incident.(v))
    edge_of_vertex;
  let depth = Array.make n (-1) in
  let ball a =
    let queue = Queue.create () in
    let touched = ref [ a ] in
    depth.(a) <- 0;
    Queue.add a queue;
    let members = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      members := u :: !members;
      if depth.(u) < distance then
        List.iter
          (fun v ->
            if depth.(v) = -1 then begin
              depth.(v) <- depth.(u) + 1;
              touched := v :: !touched;
              Queue.add v queue
            end)
          (Graph.neighbors connectivity u)
    done;
    List.iter (fun v -> depth.(v) <- -1) !touched;
    !members
  in
  let balls = Array.init n ball in
  Array.iteri
    (fun i (u1, v1) ->
      let connect_from a =
        List.iter
          (fun b ->
            List.iter (fun j -> if j > i then Graph.add_edge line i j) incident.(b))
          balls.(a)
      in
      connect_from u1;
      connect_from v1)
    edge_of_vertex;
  { graph = line; edge_of_vertex; distance }

let vertex_of_pair t pair = Line_graph.vertex_of_edge t.edge_of_vertex pair

let conflict_count t v active =
  List.fold_left
    (fun acc u -> if u <> v && Graph.mem_edge t.graph v u then acc + 1 else acc)
    0 active

let active_subgraph t active = Graph.subgraph t.graph active

(* Independent regions of one moment: connected components of the active
   subgraph, restricted to the active vertices (subgraph keeps indices stable
   by leaving inactive vertices isolated, so their singletons are dropped).
   Ordering follows Graph.components — a pure function of the moment. *)
let components_of_active t active =
  let sub = Graph.subgraph t.graph active in
  let is_active = Array.make (Graph.n_vertices t.graph) false in
  List.iter (fun v -> is_active.(v) <- true) active;
  List.filter
    (function [ v ] -> is_active.(v) | _ -> true)
    (Graph.components sub)

let max_colors_mesh = 8
