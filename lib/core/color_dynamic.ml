type stats = {
  cycles : int;
  max_colors_used : int;
  postponed : int;
  min_delta : float;
  components : int;
  component_max_size : int;
  component_sizes : string;
  component_solves : int;
  warm_hits : int;
  warm_misses : int;
}

let run ?(crosstalk_distance = 1) ?(max_colors = None) ?(conflict_threshold = 4)
    ?(colorer = Coloring.welsh_powell) ?(warm_start = false) ?(decompose = false)
    device circuit =
  (match max_colors with
  | Some k when k < 1 -> invalid_arg "Color_dynamic.run: max_colors must be >= 1"
  | _ -> ());
  if conflict_threshold < 1 then invalid_arg "Color_dynamic.run: conflict_threshold must be >= 1";
  let effective_threshold =
    match max_colors with
    | Some k -> min conflict_threshold k
    | None -> conflict_threshold
  in
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let pending = Pending.create circuit in
  let steps = ref [] in
  let cycles = ref 0 in
  let max_colors_used = ref 0 in
  let postponed = ref 0 in
  let min_delta = ref infinity in
  let components = ref 0 in
  let component_max_size = ref 0 in
  let size_histogram : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let component_solves = ref 0 in
  let warm_hit_count = ref 0 in
  let warm_miss_count = ref 0 in
  (* previous moment's interaction witness, threaded as the next warm seed *)
  let prev_witness = ref None in
  while not (Pending.is_empty pending) do
    incr cycles;
    (* Lines 10-16: select gates for this cycle, most critical first,
       postponing two-qubit gates with too many active crosstalk
       neighbours. *)
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    let active = ref [] in
    List.iter
      (fun app ->
        let free = Array.for_all (fun q -> not used.(q)) app.Gate.qubits in
        if free then begin
          let accept =
            match app.Gate.qubits with
            | [| a; b |] ->
              let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
              if Crosstalk_graph.conflict_count xg v !active < effective_threshold then begin
                active := v :: !active;
                true
              end
              else begin
                incr postponed;
                false
              end
            | _ -> true
          in
          if accept then begin
            Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
            chosen := app :: !chosen
          end
        end)
      (Pending.ready pending);
    (* Lines 17-19: color the active subgraph of the crosstalk graph. *)
    let subgraph = Crosstalk_graph.active_subgraph xg !active in
    let raw_coloring = colorer subgraph in
    (* Compact the colors appearing on active vertices to 0..k-1, largest
       class first so a color cap keeps the busiest classes. *)
    let class_size = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let c = raw_coloring.(v) in
        Hashtbl.replace class_size c (1 + Option.value ~default:0 (Hashtbl.find_opt class_size c)))
      !active;
    let classes_by_size =
      List.sort
        (fun (c1, n1) (c2, n2) -> match compare n2 n1 with 0 -> compare c1 c2 | c -> c)
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) class_size [])
    in
    let compact = Hashtbl.create 8 in
    List.iteri (fun i (c, _) -> Hashtbl.replace compact c i) classes_by_size;
    (* Apply the color cap: postpone gates whose compact color exceeds it. *)
    let cap = match max_colors with Some k -> k | None -> max_int in
    let keep_gate app =
      match app.Gate.qubits with
      | [| a; b |] ->
        let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
        let c = Hashtbl.find compact raw_coloring.(v) in
        if c < cap then true
        else begin
          incr postponed;
          false
        end
      | _ -> true
    in
    let gates = List.filter keep_gate (List.rev !chosen) in
    assert (gates <> []);
    (* surviving active vertices and their color multiplicities *)
    let survivors =
      List.filter_map
        (fun app ->
          match app.Gate.qubits with
          | [| a; b |] -> Some (Crosstalk_graph.vertex_of_pair xg (a, b))
          | _ -> None)
        gates
    in
    let n_colors =
      List.fold_left (fun acc v -> max acc (1 + Hashtbl.find compact raw_coloring.(v))) 0 survivors
    in
    max_colors_used := max !max_colors_used n_colors;
    (* Line 20: map colors to interaction frequencies via the solver. *)
    let multiplicity = Array.make (max n_colors 1) 0 in
    List.iter
      (fun v ->
        let c = Hashtbl.find compact raw_coloring.(v) in
        multiplicity.(c) <- multiplicity.(c) + 1)
      survivors;
    (* Independent regions of the moment: bookkeeping always (the trace
       reports decomposability even when allocation stays global), allocation
       fan-out only under [decompose]. *)
    let comps = Crosstalk_graph.components_of_active xg survivors in
    List.iter
      (fun comp ->
        let size = List.length comp in
        incr components;
        if size > !component_max_size then component_max_size := size;
        Hashtbl.replace size_histogram size
          (1 + Option.value ~default:0 (Hashtbl.find_opt size_histogram size)))
      comps;
    let color_of v = Hashtbl.find compact raw_coloring.(v) in
    let freq_of_gate =
      if n_colors = 0 then fun _ -> Step_builder.interaction_center device
      else if decompose && List.length comps > 1 then begin
        (* Per-component allocation: each component's color set is remapped
           dense (ascending) and solved as its own small complete-graph
           problem — a pool task whose memo key is the component's color
           count and order, so recurring fragments hit the cache.  Results
           merge in component order; Pool.map stores by index, so the merged
           frequencies are byte-identical at any job count. *)
        let cells =
          List.map
            (fun comp ->
              let cols =
                List.sort_uniq compare (List.map color_of comp)
              in
              let local_of_col = Hashtbl.create 8 in
              List.iteri (fun i c -> Hashtbl.replace local_of_col c i) cols;
              let mult = Array.make (List.length cols) 0 in
              List.iter
                (fun v ->
                  let i = Hashtbl.find local_of_col (color_of v) in
                  mult.(i) <- mult.(i) + 1)
                comp;
              (comp, local_of_col, mult))
            comps
        in
        let assignments =
          Pool.map
            (fun (_, _, mult) ->
              Freq_alloc.interaction device ~n_colors:(Array.length mult)
                ~multiplicity:mult)
            cells
        in
        component_solves := !component_solves + List.length comps;
        let freq_of_vertex = Hashtbl.create 16 in
        List.iter2
          (fun (comp, local_of_col, _) (assignment : Freq_alloc.assignment) ->
            if assignment.Freq_alloc.delta < !min_delta then
              min_delta := assignment.Freq_alloc.delta;
            List.iter
              (fun v ->
                Hashtbl.replace freq_of_vertex v
                  assignment.Freq_alloc.freqs.(Hashtbl.find local_of_col (color_of v)))
              comp)
          cells assignments;
        fun app ->
          match app.Gate.qubits with
          | [| a; b |] ->
            Hashtbl.find freq_of_vertex (Crosstalk_graph.vertex_of_pair xg (a, b))
          | _ -> assert false
      end
      else begin
        let warm = if warm_start then !prev_witness else None in
        let warm_used = ref false in
        let assignment =
          Freq_alloc.interaction ?warm ~warm_used device ~n_colors ~multiplicity
        in
        (match warm with
        | Some _ -> if !warm_used then incr warm_hit_count else incr warm_miss_count
        | None -> ());
        if warm_start then prev_witness := Some assignment.Freq_alloc.freqs;
        incr component_solves;
        if assignment.Freq_alloc.delta < !min_delta then
          min_delta := assignment.Freq_alloc.delta;
        fun app ->
          match app.Gate.qubits with
          | [| a; b |] ->
            let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
            assignment.Freq_alloc.freqs.(color_of v)
          | _ -> assert false
      end
    in
    List.iter (Pending.schedule pending) gates;
    steps := Step_builder.make device ~idle_freqs ~freq_of_gate gates :: !steps
  done;
  let schedule =
    {
      Schedule.device;
      algorithm = "color-dynamic";
      steps = List.rev !steps;
      idle_freqs;
      coupler = Schedule.Fixed_coupler;
    }
  in
  let component_sizes =
    String.concat " "
      (List.map
         (fun (size, count) -> Printf.sprintf "%d:%d" size count)
         (List.sort compare (Hashtbl.fold (fun s c acc -> (s, c) :: acc) size_histogram [])))
  in
  ( schedule,
    {
      cycles = !cycles;
      max_colors_used = !max_colors_used;
      postponed = !postponed;
      min_delta = !min_delta;
      components = !components;
      component_max_size = !component_max_size;
      component_sizes;
      component_solves = !component_solves;
      warm_hits = !warm_hit_count;
      warm_misses = !warm_miss_count;
    } )

let pass_stats stats =
  [
    ("cycles", Pass.Int stats.cycles);
    ("max_colors_used", Pass.Int stats.max_colors_used);
    ("postponed", Pass.Int stats.postponed);
    ("min_delta", Pass.Float stats.min_delta);
    ("components", Pass.Int stats.components);
    ("component_max_size", Pass.Int stats.component_max_size);
    ("component_sizes", Pass.Text stats.component_sizes);
    ("component_solves", Pass.Int stats.component_solves);
    ("warm_hits", Pass.Int stats.warm_hits);
    ("warm_misses", Pass.Int stats.warm_misses);
  ]

let scheduler : Pass.scheduler =
  (module struct
    let name = "color-dynamic"

    let aliases = [ "colordynamic"; "cd" ]

    let table1 = true

    let consumes = `Native

    let schedule (options : Pass.options) device native =
      let schedule, stats =
        run ~crosstalk_distance:options.Pass.crosstalk_distance
          ~max_colors:options.Pass.max_colors
          ~conflict_threshold:options.Pass.conflict_threshold
          ~warm_start:options.Pass.warm_start
          ~decompose:options.Pass.decompose_components device native
      in
      (schedule, pass_stats stats)
  end)
