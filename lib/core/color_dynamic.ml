type stats = {
  cycles : int;
  max_colors_used : int;
  postponed : int;
  min_delta : float;
}

let run ?(crosstalk_distance = 1) ?(max_colors = None) ?(conflict_threshold = 4)
    ?(colorer = Coloring.welsh_powell) device circuit =
  (match max_colors with
  | Some k when k < 1 -> invalid_arg "Color_dynamic.run: max_colors must be >= 1"
  | _ -> ());
  if conflict_threshold < 1 then invalid_arg "Color_dynamic.run: conflict_threshold must be >= 1";
  let effective_threshold =
    match max_colors with
    | Some k -> min conflict_threshold k
    | None -> conflict_threshold
  in
  let idle_freqs = Freq_alloc.idle_per_qubit device in
  let xg = Crosstalk_graph.build ~distance:crosstalk_distance (Device.graph device) in
  let pending = Pending.create circuit in
  let steps = ref [] in
  let cycles = ref 0 in
  let max_colors_used = ref 0 in
  let postponed = ref 0 in
  let min_delta = ref infinity in
  while not (Pending.is_empty pending) do
    incr cycles;
    (* Lines 10-16: select gates for this cycle, most critical first,
       postponing two-qubit gates with too many active crosstalk
       neighbours. *)
    let used = Array.make (Device.n_qubits device) false in
    let chosen = ref [] in
    let active = ref [] in
    List.iter
      (fun app ->
        let free = Array.for_all (fun q -> not used.(q)) app.Gate.qubits in
        if free then begin
          let accept =
            match app.Gate.qubits with
            | [| a; b |] ->
              let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
              if Crosstalk_graph.conflict_count xg v !active < effective_threshold then begin
                active := v :: !active;
                true
              end
              else begin
                incr postponed;
                false
              end
            | _ -> true
          in
          if accept then begin
            Array.iter (fun q -> used.(q) <- true) app.Gate.qubits;
            chosen := app :: !chosen
          end
        end)
      (Pending.ready pending);
    (* Lines 17-19: color the active subgraph of the crosstalk graph. *)
    let subgraph = Crosstalk_graph.active_subgraph xg !active in
    let raw_coloring = colorer subgraph in
    (* Compact the colors appearing on active vertices to 0..k-1, largest
       class first so a color cap keeps the busiest classes. *)
    let class_size = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let c = raw_coloring.(v) in
        Hashtbl.replace class_size c (1 + Option.value ~default:0 (Hashtbl.find_opt class_size c)))
      !active;
    let classes_by_size =
      List.sort
        (fun (c1, n1) (c2, n2) -> match compare n2 n1 with 0 -> compare c1 c2 | c -> c)
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) class_size [])
    in
    let compact = Hashtbl.create 8 in
    List.iteri (fun i (c, _) -> Hashtbl.replace compact c i) classes_by_size;
    (* Apply the color cap: postpone gates whose compact color exceeds it. *)
    let cap = match max_colors with Some k -> k | None -> max_int in
    let keep_gate app =
      match app.Gate.qubits with
      | [| a; b |] ->
        let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
        let c = Hashtbl.find compact raw_coloring.(v) in
        if c < cap then true
        else begin
          incr postponed;
          false
        end
      | _ -> true
    in
    let gates = List.filter keep_gate (List.rev !chosen) in
    assert (gates <> []);
    (* surviving active vertices and their color multiplicities *)
    let survivors =
      List.filter_map
        (fun app ->
          match app.Gate.qubits with
          | [| a; b |] -> Some (Crosstalk_graph.vertex_of_pair xg (a, b))
          | _ -> None)
        gates
    in
    let n_colors =
      List.fold_left (fun acc v -> max acc (1 + Hashtbl.find compact raw_coloring.(v))) 0 survivors
    in
    max_colors_used := max !max_colors_used n_colors;
    (* Line 20: map colors to interaction frequencies via the solver. *)
    let multiplicity = Array.make (max n_colors 1) 0 in
    List.iter
      (fun v ->
        let c = Hashtbl.find compact raw_coloring.(v) in
        multiplicity.(c) <- multiplicity.(c) + 1)
      survivors;
    let freq_of_gate =
      if n_colors = 0 then fun _ -> Step_builder.interaction_center device
      else begin
        let assignment = Freq_alloc.interaction device ~n_colors ~multiplicity in
        if assignment.Freq_alloc.delta < !min_delta then
          min_delta := assignment.Freq_alloc.delta;
        fun app ->
          match app.Gate.qubits with
          | [| a; b |] ->
            let v = Crosstalk_graph.vertex_of_pair xg (a, b) in
            assignment.Freq_alloc.freqs.(Hashtbl.find compact raw_coloring.(v))
          | _ -> assert false
      end
    in
    List.iter (Pending.schedule pending) gates;
    steps := Step_builder.make device ~idle_freqs ~freq_of_gate gates :: !steps
  done;
  let schedule =
    {
      Schedule.device;
      algorithm = "color-dynamic";
      steps = List.rev !steps;
      idle_freqs;
      coupler = Schedule.Fixed_coupler;
    }
  in
  ( schedule,
    {
      cycles = !cycles;
      max_colors_used = !max_colors_used;
      postponed = !postponed;
      min_delta = !min_delta;
    } )

let pass_stats stats =
  [
    ("cycles", Pass.Int stats.cycles);
    ("max_colors_used", Pass.Int stats.max_colors_used);
    ("postponed", Pass.Int stats.postponed);
    ("min_delta", Pass.Float stats.min_delta);
  ]

let scheduler : Pass.scheduler =
  (module struct
    let name = "color-dynamic"

    let aliases = [ "colordynamic"; "cd" ]

    let table1 = true

    let schedule (options : Pass.options) device native =
      let schedule, stats =
        run ~crosstalk_distance:options.Pass.crosstalk_distance
          ~max_colors:options.Pass.max_colors
          ~conflict_threshold:options.Pass.conflict_threshold device native
      in
      (schedule, pass_stats stats)
  end)
