(** Baseline S: static (program-independent) frequency-aware compilation
    (paper Table I).

    Colors the {e entire} crosstalk graph once and maps every color to a
    fixed interaction frequency, so any simultaneity is spectrally safe by
    construction and the scheduler can keep full ASAP parallelism.  The
    price: a 2-D mesh needs 8 colors (Fig 7), so the achievable pairwise
    separation delta within the interaction region is small and residual
    crosstalk stays high — the gap to ColorDynamic in Fig 9, which colors
    only the per-step active subgraph. *)

val run : ?crosstalk_distance:int -> Device.t -> Circuit.t -> Schedule.t

val static_assignment :
  ?crosstalk_distance:int -> Device.t -> (int * int -> float) * int
(** The per-coupling static interaction frequency table and the number of
    colors used; exposed for reporting (Fig 14-style dumps). *)

val scheduler : Pass.scheduler
(** This algorithm as a registry entry (name ["baseline-s"], aliases
    ["static"]/["s"]); reads [crosstalk_distance] from the pipeline options.
    Registered by {!Compile}. *)
