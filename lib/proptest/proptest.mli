(** Property-based testing with shrinking and deterministic replay.

    A from-scratch QCheck-style engine built on the code base's own splitmix64
    {!Rng}, so that every generated case is a pure function of an integer seed
    and failures replay bit-identically on any platform.  The compiler stack
    is full of invariants that hold for {e all} inputs — satisfying frequency
    assignments re-verify against their constraints, colorings are proper,
    decompositions preserve the unitary, parallel sweeps match their
    sequential reference — and this module is how the test suite states them.

    A property is a predicate over values drawn from an {!arbitrary} (a
    generator bundled with a shrinker and a printer).  The runner draws
    [count] cases; case [k] of a run with base seed [s] is generated from
    [Rng.create (s + k)].  When a case fails, the shrinker greedily walks to
    a local minimum counterexample, and the failure report prints the case's
    seed together with a [FASTSC_PROPTEST_SEED=...] incantation that re-runs
    exactly that case (the failing seed becomes case 0 of the replay).

    Environment:
    - [FASTSC_PROPTEST_COUNT] overrides the default number of cases per
      property (default 100) for tests that do not pin an explicit [~count];
    - [FASTSC_PROPTEST_SEED] overrides the base seed (default fixed, so runs
      are deterministic unless asked otherwise). *)

module Gen : sig
  type 'a t = Rng.t -> 'a
  (** A generator is a pure function of generator state. *)

  val return : 'a -> 'a t

  val map : ('a -> 'b) -> 'a t -> 'b t

  val bind : 'a t -> ('a -> 'b t) -> 'b t

  val pair : 'a t -> 'b t -> ('a * 'b) t

  val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

  val bool : bool t

  val int_range : int -> int -> int t
  (** [int_range lo hi] is uniform on the inclusive range.
      @raise Invalid_argument if [lo > hi]. *)

  val float_range : float -> float -> float t
  (** Uniform on [\[lo, hi)] ([lo] when the range is empty). *)

  val oneof : 'a t list -> 'a t
  (** Uniform choice among sub-generators (non-empty). *)

  val frequency : (int * 'a t) list -> 'a t
  (** Weighted choice; weights must be positive. *)

  val choose : 'a array -> 'a t
  (** Uniform element of a non-empty array. *)

  val list : ?min_len:int -> max_len:int -> 'a t -> 'a list t
  (** Length uniform in [\[min_len, max_len\]] (default [min_len = 0]). *)

  val array : ?min_len:int -> max_len:int -> 'a t -> 'a array t
end

module Shrink : sig
  type 'a t = 'a -> 'a Seq.t
  (** Candidate simpler values, most aggressive first.  The runner keeps the
      first candidate that still fails and iterates to a fixpoint. *)

  val nothing : 'a t

  val int_toward : int -> int t
  (** Candidates between the destination and the value, halving the gap:
      the destination itself first, then ever-smaller steps. *)

  val int : int t
  (** [int_toward 0]. *)

  val float_toward : float -> float t

  val pair : 'a t -> 'b t -> ('a * 'b) t

  val list : ?elt:'a t -> 'a list t
  (** Structural list shrinking: keep one half, drop single elements, then
      shrink individual elements with [elt] when given. *)

  val array : ?elt:'a t -> 'a array t
end

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
  size : 'a -> int;
      (** Structural size of a value (list length, vertices + edges, qubits +
          gates...), reported alongside the shrink-step count so a failure
          report says how small the minimum actually got. *)
}

val make :
  ?shrink:'a Shrink.t -> ?print:('a -> string) -> ?size:('a -> int) -> 'a Gen.t -> 'a arbitrary
(** Default shrinker is {!Shrink.nothing}; default printer is ["<opaque>"];
    default size is constant [0] (unknown structure). *)

val int_range : int -> int -> int arbitrary
(** Shrinks toward the lower bound. *)

val float_range : float -> float -> float arbitrary
(** Shrinks toward the lower bound. *)

val bool : bool arbitrary

val pair : 'a arbitrary -> 'b arbitrary -> ('a * 'b) arbitrary

val list : ?min_len:int -> max_len:int -> 'a arbitrary -> 'a list arbitrary

val array : ?min_len:int -> max_len:int -> 'a arbitrary -> 'a array arbitrary

val graph : ?min_vertices:int -> max_vertices:int -> edge_prob:float -> unit -> Graph.t arbitrary
(** Erdős–Rényi-style random graph: vertex count uniform in
    [\[min_vertices, max_vertices\]] (default [min_vertices = 0]), each edge
    present with probability [edge_prob].  Shrinks by removing the last
    vertex and by dropping single edges. *)

val bipartite_graph : max_side:int -> edge_prob:float -> unit -> Graph.t arbitrary
(** Random bipartite graph: sides of up to [max_side] vertices each (left
    part first), edges only across the parts, so 2-colorability is
    guaranteed by construction.  Shrinking drops edges (which preserves
    bipartiteness). *)

val circuit : max_qubits:int -> max_gates:int -> unit -> Circuit.t arbitrary
(** Random circuit over the {e full} gate set of {!Gate.t} — including the
    non-native [Cnot]/[Swap] and the parametric rotations and [Xy] family —
    on [1 .. max_qubits] qubits.  Two-qubit gates are only emitted on
    registers with at least two qubits.  Shrinks by dropping gates. *)

type failure = {
  test_name : string;
  case : int;  (** 1-based index of the failing case. *)
  cases : int;  (** Cases the run would have executed. *)
  seed : int;  (** Seed that regenerates the failing case. *)
  original : string;  (** Printed counterexample as generated. *)
  shrunk : string;  (** Printed minimal counterexample. *)
  shrink_steps : int;
  shrunk_size : int;  (** {!arbitrary.size} of the minimal counterexample. *)
  exn : string option;  (** Set when the property raised rather than returned [false]. *)
  message : string;  (** Full human-readable report, including the replay line. *)
}

type result = Pass of int  (** Number of cases that ran. *) | Fail of failure

type test

val test : name:string -> ?count:int -> 'a arbitrary -> ('a -> bool) -> test
(** Package a property.  [count] defaults to {!default_count} at run time.
    A property fails by returning [false] or by raising. *)

val default_count : unit -> int
(** [FASTSC_PROPTEST_COUNT] when set to a positive integer, else 100. *)

val run : ?seed:int -> test -> result
(** Execute the property.  The base seed is, in decreasing precedence:
    [~seed], [FASTSC_PROPTEST_SEED], a fixed default. *)

val check : ?seed:int -> test -> unit
(** {!run}, raising [Failure] with the failure report on a counterexample —
    the form the Alcotest suites consume. *)
