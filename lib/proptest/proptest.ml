module Gen = struct
  type 'a t = Rng.t -> 'a

  let return x _rng = x

  let map f g rng = f (g rng)

  let bind g f rng = f (g rng) rng

  let pair ga gb rng =
    let a = ga rng in
    let b = gb rng in
    (a, b)

  let triple ga gb gc rng =
    let a = ga rng in
    let b = gb rng in
    let c = gc rng in
    (a, b, c)

  let bool rng = Rng.bool rng

  let int_range lo hi rng =
    if lo > hi then invalid_arg "Proptest.Gen.int_range: lo > hi";
    lo + Rng.int rng (hi - lo + 1)

  let float_range lo hi rng = if lo >= hi then lo else Rng.uniform rng lo hi

  let oneof gens rng =
    match gens with
    | [] -> invalid_arg "Proptest.Gen.oneof: empty list"
    | _ -> List.nth gens (Rng.int rng (List.length gens)) rng

  let frequency weighted rng =
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
    if total <= 0 then invalid_arg "Proptest.Gen.frequency: weights must be positive";
    let roll = Rng.int rng total in
    let rec pick acc = function
      | [] -> assert false
      | (w, g) :: rest -> if roll < acc + w then g rng else pick (acc + w) rest
    in
    pick 0 weighted

  let choose values rng = Rng.choose rng values

  (* explicit loops rather than List.init/Array.init: their evaluation order
     is unspecified, and replayable generation needs the RNG consumed in a
     fixed order *)
  let list ?(min_len = 0) ~max_len elt rng =
    let len = int_range min_len max_len rng in
    let acc = ref [] in
    for _ = 1 to len do
      acc := elt rng :: !acc
    done;
    List.rev !acc

  let array ?(min_len = 0) ~max_len elt rng =
    let len = int_range min_len max_len rng in
    if len = 0 then [||]
    else begin
      let first = elt rng in
      let out = Array.make len first in
      for i = 1 to len - 1 do
        out.(i) <- elt rng
      done;
      out
    end
end

module Shrink = struct
  type 'a t = 'a -> 'a Seq.t

  let nothing _ = Seq.empty

  (* Candidates walk from the destination toward the value, halving the gap:
     the first candidate is the most aggressive shrink, later ones approach
     the original so the greedy runner can always make some progress. *)
  let int_toward dest x =
    if x = dest then Seq.empty
    else
      Seq.unfold (fun gap -> if gap = 0 then None else Some (x - gap, gap / 2)) (x - dest)

  let int x = int_toward 0 x

  let float_toward dest x =
    if x = dest || not (Float.is_finite x) then Seq.empty
    else
      Seq.take 24
        (Seq.unfold
           (fun gap ->
             if Float.abs gap < 1e-12 then None else Some (x -. gap, gap /. 2.0))
           (x -. dest))

  let pair sa sb (a, b) =
    Seq.append
      (Seq.map (fun a' -> (a', b)) (sa a))
      (Seq.map (fun b' -> (a, b')) (sb b))

  let rec take_n k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take_n (k - 1) rest

  let rec drop_n k = function
    | xs when k = 0 -> xs
    | [] -> []
    | _ :: rest -> drop_n (k - 1) rest

  let list ?elt xs =
    let n = List.length xs in
    let halves =
      if n >= 2 then List.to_seq [ take_n (n / 2) xs; drop_n (n / 2) xs ] else Seq.empty
    in
    let without_one =
      Seq.map
        (fun i -> List.filteri (fun j _ -> j <> i) xs)
        (Seq.init n (fun i -> i))
    in
    let shrink_one =
      match elt with
      | None -> Seq.empty
      | Some elt ->
        Seq.concat_map
          (fun i ->
            Seq.map
              (fun y -> List.mapi (fun j x -> if j = i then y else x) xs)
              (elt (List.nth xs i)))
          (Seq.init n (fun i -> i))
    in
    Seq.append halves (Seq.append without_one shrink_one)

  let array ?elt xs =
    Seq.map Array.of_list (list ?elt (Array.to_list xs))
end

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
  size : 'a -> int;
}

let make ?(shrink = Shrink.nothing) ?(print = fun _ -> "<opaque>") ?(size = fun _ -> 0) gen =
  { gen; shrink; print; size }

let int_range lo hi =
  {
    gen = Gen.int_range lo hi;
    shrink = Shrink.int_toward lo;
    print = string_of_int;
    size = (fun x -> abs x);
  }

let float_range lo hi =
  {
    gen = Gen.float_range lo hi;
    shrink = Shrink.float_toward lo;
    print = string_of_float;
    size = (fun _ -> 0);
  }

let bool =
  { gen = Gen.bool; shrink = Shrink.nothing; print = string_of_bool; size = (fun _ -> 0) }

let print_list print xs = "[" ^ String.concat "; " (List.map print xs) ^ "]"

let pair a b =
  {
    gen = Gen.pair a.gen b.gen;
    shrink = Shrink.pair a.shrink b.shrink;
    print = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.print x) (b.print y));
    size = (fun (x, y) -> a.size x + b.size y);
  }

let list ?min_len ~max_len elt =
  {
    gen = Gen.list ?min_len ~max_len elt.gen;
    shrink = Shrink.list ~elt:elt.shrink;
    print = print_list elt.print;
    size = List.length;
  }

let array ?min_len ~max_len elt =
  {
    gen = Gen.array ?min_len ~max_len elt.gen;
    shrink = Shrink.array ~elt:elt.shrink;
    print = (fun xs -> print_list elt.print (Array.to_list xs));
    size = Array.length;
  }

(* -- structural generators over the compiler's own data types -------------- *)

let print_graph g = Format.asprintf "%a" Graph.pp g

let graph_gen ~min_vertices ~max_vertices ~edge_prob rng =
  let n = Gen.int_range min_vertices max_vertices rng in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < edge_prob then Graph.add_edge g u v
    done
  done;
  g

(* Shrinking a graph: removing the last vertex (with its edges) first, then
   dropping single edges.  Both moves only ever simplify the instance. *)
let graph_shrink g =
  let n = Graph.n_vertices g in
  let edges = Graph.edges g in
  let smaller =
    if n = 0 then Seq.empty
    else
      Seq.return
        (Graph.of_edges (n - 1) (List.filter (fun (u, v) -> u < n - 1 && v < n - 1) edges))
  in
  let drop_edge (u, v) =
    let h = Graph.copy g in
    Graph.remove_edge h u v;
    h
  in
  Seq.append smaller (Seq.map drop_edge (List.to_seq edges))

let graph_size g = Graph.n_vertices g + List.length (Graph.edges g)

let graph ?(min_vertices = 0) ~max_vertices ~edge_prob () =
  {
    gen = graph_gen ~min_vertices ~max_vertices ~edge_prob;
    shrink = graph_shrink;
    print = print_graph;
    size = graph_size;
  }

let bipartite_graph ~max_side ~edge_prob () =
  let gen rng =
    let a = Gen.int_range 0 max_side rng in
    let b = Gen.int_range 0 max_side rng in
    let g = Graph.create (a + b) in
    for u = 0 to a - 1 do
      for v = a to a + b - 1 do
        if Rng.float rng < edge_prob then Graph.add_edge g u v
      done
    done;
    g
  in
  (* only edge removals: deleting the last vertex would renumber the parts *)
  let shrink g =
    Seq.map
      (fun (u, v) ->
        let h = Graph.copy g in
        Graph.remove_edge h u v;
        h)
      (List.to_seq (Graph.edges g))
  in
  { gen; shrink; print = print_graph; size = graph_size }

(* The full gate set, the parametric families included: invariants that only
   hold for Cliffords would be caught out by the rotation angles here. *)
let random_gate ~two_qubit_ok rng =
  let angle rng = Rng.uniform rng 0.1 (2.0 *. Float.pi -. 0.1) in
  let single =
    [|
      (fun _ -> Gate.I);
      (fun _ -> Gate.X);
      (fun _ -> Gate.Y);
      (fun _ -> Gate.Z);
      (fun _ -> Gate.H);
      (fun _ -> Gate.S);
      (fun _ -> Gate.Sdg);
      (fun _ -> Gate.T);
      (fun _ -> Gate.Tdg);
      (fun _ -> Gate.Sx);
      (fun _ -> Gate.Sy);
      (fun _ -> Gate.Sw);
      (fun rng -> Gate.Rx (angle rng));
      (fun rng -> Gate.Ry (angle rng));
      (fun rng -> Gate.Rz (angle rng));
    |]
  in
  let double =
    [|
      (fun _ -> Gate.Cz);
      (fun _ -> Gate.Iswap);
      (fun _ -> Gate.Sqrt_iswap);
      (fun rng -> Gate.Xy (angle rng));
      (fun _ -> Gate.Cnot);
      (fun _ -> Gate.Swap);
    |]
  in
  if two_qubit_ok && Rng.int rng 3 = 0 then (Rng.choose rng double) rng
  else (Rng.choose rng single) rng

let circuit_gen ~max_qubits ~max_gates rng =
  let n = Gen.int_range 1 max_qubits rng in
  let len = Gen.int_range 0 max_gates rng in
  let b = Circuit.builder n in
  for _ = 1 to len do
    let gate = random_gate ~two_qubit_ok:(n >= 2) rng in
    let q = Rng.int rng n in
    let operands =
      if Gate.is_two_qubit gate then [ q; (q + 1 + Rng.int rng (n - 1)) mod n ] else [ q ]
    in
    Circuit.add b gate operands
  done;
  Circuit.finish b

let circuit_shrink c =
  let n = Circuit.n_qubits c in
  let gates =
    List.map
      (fun app -> (app.Gate.gate, Array.to_list app.Gate.qubits))
      (Array.to_list (Circuit.instructions c))
  in
  Seq.map (fun gs -> Circuit.of_gates n gs) (Shrink.list gates)

let circuit ~max_qubits ~max_gates () =
  {
    gen = circuit_gen ~max_qubits ~max_gates;
    shrink = circuit_shrink;
    print = (fun c -> Format.asprintf "%d qubits:@ %a" (Circuit.n_qubits c) Circuit.pp c);
    size = (fun c -> Circuit.n_qubits c + Array.length (Circuit.instructions c));
  }

(* -- the runner ------------------------------------------------------------ *)

type failure = {
  test_name : string;
  case : int;
  cases : int;
  seed : int;
  original : string;
  shrunk : string;
  shrink_steps : int;
  shrunk_size : int;
  exn : string option;
  message : string;
}

type result = Pass of int | Fail of failure

type test =
  | Test : { name : string; count : int option; arb : 'a arbitrary; prop : 'a -> bool } -> test

let test ~name ?count arb prop = Test { name; count; arb; prop }

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let default_count () =
  match env_int "FASTSC_PROPTEST_COUNT" with Some n when n >= 1 -> n | _ -> 100

(* Deterministic by default: a fixed base seed means the suite tests the same
   cases on every run and every machine, and CI failures replay locally. *)
let fixed_seed = 0x5eedc0de

let max_shrink_steps = 500

let run ?seed (Test t) =
  let count = match t.count with Some c -> c | None -> default_count () in
  let base =
    match seed with
    | Some s -> s
    | None -> ( match env_int "FASTSC_PROPTEST_SEED" with Some s -> s | None -> fixed_seed)
  in
  let last_exn = ref None in
  let holds x =
    last_exn := None;
    match t.prop x with
    | ok -> ok
    | exception e ->
      last_exn := Some (Printexc.to_string e);
      false
  in
  (* Greedy descent: keep the first shrink candidate that still fails, repeat
     until no candidate fails (a local minimum) or the step budget runs out. *)
  let rec minimize x steps =
    if steps >= max_shrink_steps then (x, steps)
    else
      match Seq.find (fun y -> not (holds y)) (t.arb.shrink x) with
      | Some y -> minimize y (steps + 1)
      | None -> (x, steps)
  in
  let rec cases k =
    if k >= count then Pass count
    else
      let case_seed = base + k in
      let x = t.arb.gen (Rng.create case_seed) in
      if holds x then cases (k + 1)
      else
        let original = t.arb.print x in
        let shrunk, shrink_steps = minimize x 0 in
        (* re-evaluate so the recorded exception belongs to the minimum, not
           to whichever passing candidate the shrinker probed last *)
        ignore (holds shrunk : bool);
        let exn = !last_exn in
        let shrunk_size = t.arb.size shrunk in
        let message =
          Printf.sprintf
            "property %S failed at case %d/%d (seed %d)\n\
            \  counterexample:    %s\n\
            \  shrunk (%d steps): %s\n\
             %s\
            \  replay: FASTSC_PROPTEST_SEED=%d FASTSC_PROPTEST_COUNT=1 re-runs exactly this \
             case (%d shrink steps, final size %d)"
            t.name (k + 1) count case_seed original shrink_steps (t.arb.print shrunk)
            (match exn with
            | Some e -> Printf.sprintf "  raised:            %s\n" e
            | None -> "")
            case_seed shrink_steps shrunk_size
        in
        Fail
          {
            test_name = t.name;
            case = k + 1;
            cases = count;
            seed = case_seed;
            original;
            shrunk = t.arb.print shrunk;
            shrink_steps;
            shrunk_size;
            exn;
            message;
          }
  in
  cases 0

let check ?seed t = match run ?seed t with Pass _ -> () | Fail f -> failwith f.message
