type sep = { i : int; j : int; offset : float }

type t = {
  n : int;
  lo : float array;
  hi : float array;
  mutable seps : sep list;
  mutable forbidden : (int * float) list;
}

let epsilon = 1e-9

(* Seeded faults for the verification harness (docs/DESIGN.md §11): each is a
   deliberate bug, off unless FASTSC_FAULT selects it, that the test suite
   must demonstrably catch. *)
let fault_resolve_flip = lazy (Fastsc_util.Fault.enabled "smt-resolve-flip")

let fault_sideband_skip = lazy (Fastsc_util.Fault.enabled "smt-sideband-skip")

let fault_deadline_skip = lazy (Fastsc_util.Fault.enabled "smt-deadline-skip")

(* Cooperative cancellation for the serve layer's request budgets: every
   search loop polls the ambient deadline at chunk boundaries (once per
   bisection probe, once per [deadline_poll_mask + 1] search nodes) and
   unwinds with Deadline.Expired — an exception, never a [None], so an
   exhausted budget can never masquerade as infeasibility.  This single
   guard covers every poll in the module, so the seeded fault disables them
   all at once (a partial skip would still be caught by the deeper polls and
   teach the meta-suite nothing). *)
let deadline_poll_mask = 255

let deadline_check site =
  if not (Lazy.force fault_deadline_skip) then Fastsc_util.Deadline.check ~site ()

let create ?(lo = 0.0) ?(hi = 1.0) n =
  if n < 0 then invalid_arg "Smt.create: negative variable count";
  if lo > hi then invalid_arg "Smt.create: lo > hi";
  { n; lo = Array.make n lo; hi = Array.make n hi; seps = []; forbidden = [] }

let n_vars t = t.n

let check_var t v =
  if v < 0 || v >= t.n then invalid_arg "Smt: variable out of range"

let set_bounds t v ~lo ~hi =
  check_var t v;
  if lo > hi then invalid_arg "Smt.set_bounds: lo > hi";
  t.lo.(v) <- lo;
  t.hi.(v) <- hi

let add_separation ?(offset = 0.0) t i j =
  check_var t i;
  check_var t j;
  if i = j && offset = 0.0 then
    invalid_arg "Smt.add_separation: |x - x| >= delta is unsatisfiable";
  t.seps <- { i; j; offset } :: t.seps

let add_forbidden t v ~center =
  check_var t v;
  t.forbidden <- (v, center) :: t.forbidden;
  t

(* Open intervals that x_v must avoid, given currently placed values. *)
let blocked_intervals t ~delta placed v =
  let intervals = ref [] in
  let avoid center = intervals := (center -. delta, center +. delta) :: !intervals in
  List.iter
    (fun { i; j; offset } ->
      if i = v && j <> v then (
        match placed.(j) with
        | Some xj -> avoid (xj -. offset)
        | None -> ())
      else if j = v && i <> v then (
        match placed.(i) with
        | Some xi -> avoid (xi +. offset)
        | None -> ()))
    t.seps;
  List.iter (fun (u, center) -> if u = v then avoid center) t.forbidden;
  List.sort compare !intervals

(* Self-sideband constraints |offset| >= delta do not depend on the values. *)
let self_constraints_ok t ~delta =
  Lazy.force fault_sideband_skip
  || List.for_all
       (fun { i; j; offset } -> i <> j || Float.abs offset +. epsilon >= delta)
       t.seps

(* Smallest value >= start that avoids every interval; None if it escapes
   [hi].  Blocked intervals are open, so landing exactly on an endpoint is
   allowed.

   The list arrives sorted by (a, b), and one forward pass reaches the same
   fixpoint the old retry-until-stable loop computed.  An interval whose
   upper end sits more than epsilon below the running maximum is dominated:
   it starts no earlier than some retained interval (sort order) and ends
   strictly inside it, so any value it could bump is bumped at least as far
   by the dominating interval first — merging it away changes nothing.
   Among the survivors the upper ends are non-decreasing to within epsilon,
   so a jump to some b can never land strictly inside an {e earlier}
   interval, and a single left-to-right scan visits every interval that can
   still fire. *)
let resolve_upward intervals ~hi start =
  let value = ref start in
  let bmax = ref neg_infinity in
  let flipped = Lazy.force fault_resolve_flip in
  List.iter
    (fun (a, b) ->
      let live = if flipped then b < !bmax -. epsilon else b >= !bmax -. epsilon in
      if live then begin
        if !value > a +. epsilon && !value < b -. epsilon then value := b;
        if b > !bmax then bmax := b
      end)
    intervals;
  if !value <= hi +. epsilon then Some (Float.min !value hi) else None

(* Candidate values for backtracking: the minimal feasible one plus the upper
   endpoints of blocked intervals above it, each re-resolved against the
   remaining intervals (any optimal solution can be normalised so every
   variable sits at such a point). *)
let candidates t ~delta placed v ~floor =
  let intervals = blocked_intervals t ~delta placed v in
  let hi = t.hi.(v) in
  match resolve_upward intervals ~hi (Float.max floor t.lo.(v)) with
  | None -> []
  | Some least ->
    let ends =
      List.filter_map
        (fun (_, b) ->
          if b > least +. epsilon then resolve_upward intervals ~hi b else None)
        intervals
    in
    least :: List.sort_uniq compare (List.filter (fun x -> x > least +. epsilon) ends)

(* [stop] is polled once per search node; when it fires the search abandons
   the branch and unwinds with "no solution".  Only the portfolio racer sets
   it — a cancelled task's result is discarded there, so the early [None]
   never masquerades as a genuine infeasibility. *)
let solve_ordered ?(stop = fun () -> false) t ~delta order =
  let placed = Array.make t.n None in
  let nodes = ref 0 in
  let rec place remaining floor =
    incr nodes;
    if !nodes land deadline_poll_mask = 0 then deadline_check "solve_ordered";
    if stop () then false
    else
      match remaining with
      | [] -> true
      | v :: rest ->
        let try_value value =
          placed.(v) <- Some value;
          if place rest value then true
          else begin
            placed.(v) <- None;
            false
          end
        in
        List.exists try_value (candidates t ~delta placed v ~floor)
  in
  if place order neg_infinity then
    Some (Array.map (function Some x -> x | None -> nan) placed)
  else None

let solve_any t ~delta =
  let placed = Array.make t.n None in
  let budget = ref 200_000 in
  let rec place unplaced floor =
    decr budget;
    if !budget land deadline_poll_mask = 0 then deadline_check "solve_any";
    if !budget <= 0 then false
    else
      match unplaced with
      | [] -> true
      | _ ->
        List.exists
          (fun v ->
            let rest = List.filter (fun u -> u <> v) unplaced in
            let try_value value =
              placed.(v) <- Some value;
              if place rest value then true
              else begin
                placed.(v) <- None;
                false
              end
            in
            List.exists try_value (candidates t ~delta placed v ~floor))
          unplaced
  in
  if place (List.init t.n Fun.id) neg_infinity then
    Some (Array.map (function Some x -> x | None -> nan) placed)
  else None

type violation =
  | Length_mismatch of int
  | Not_finite of int
  | Out_of_bounds of int
  | Separation_violated of int * int * float
  | Forbidden_violated of int * float

let pp_violation ppf = function
  | Length_mismatch n -> Format.fprintf ppf "assignment has %d values" n
  | Not_finite v -> Format.fprintf ppf "x%d is not finite" v
  | Out_of_bounds v -> Format.fprintf ppf "x%d outside its bounds" v
  | Separation_violated (i, j, offset) ->
    if offset = 0.0 then Format.fprintf ppf "|x%d - x%d| < delta" i j
    else Format.fprintf ppf "|x%d %+g - x%d| < delta" i offset j
  | Forbidden_violated (v, center) ->
    Format.fprintf ppf "x%d inside the forbidden zone around %g" v center

(* All comparisons carry the same epsilon slack the solver uses, so witnesses
   sitting exactly on a boundary (two variables at precisely delta apart, a
   value landing on an interval endpoint) verify as satisfying.  Non-finite
   values are rejected explicitly: every float comparison against NaN is
   false, so without the finiteness pass an all-NaN array would sail through
   the bounds and separation loops untouched. *)
let violations t ~delta assignment =
  if Array.length assignment <> t.n then [ Length_mismatch (Array.length assignment) ]
  else begin
    let found = ref [] in
    let report v = found := v :: !found in
    for v = 0 to t.n - 1 do
      if not (Float.is_finite assignment.(v)) then report (Not_finite v)
      else if assignment.(v) < t.lo.(v) -. epsilon || assignment.(v) > t.hi.(v) +. epsilon
      then report (Out_of_bounds v)
    done;
    (* seps is kept newest-first; walk insertion order for a stable report *)
    List.iter
      (fun { i; j; offset } ->
        let broken =
          if i = j then Float.abs offset +. epsilon < delta
          else Float.abs (assignment.(i) +. offset -. assignment.(j)) +. epsilon < delta
        in
        if broken then report (Separation_violated (i, j, offset)))
      (List.rev t.seps);
    List.iter
      (fun (v, center) ->
        if Float.abs (assignment.(v) -. center) +. epsilon < delta then
          report (Forbidden_violated (v, center)))
      (List.rev t.forbidden);
    List.rev !found
  end

let verify t ~delta assignment = violations t ~delta assignment = []

let check = verify

(* Smallest slack of any constraint under [assignment]: the largest delta at
   which the assignment still verifies.  None when the assignment is invalid
   independently of delta (wrong length, NaN, outside bounds).  This is what
   makes warm starts sound: a previous moment's witness with margin [m] is a
   ready-made feasible point for every delta <= m, so the binary search can
   open at [lo = m] instead of probing delta = 0. *)
let margin t assignment =
  if Array.length assignment <> t.n then None
  else begin
    let ok = ref true in
    for v = 0 to t.n - 1 do
      if
        (not (Float.is_finite assignment.(v)))
        || assignment.(v) < t.lo.(v) -. epsilon
        || assignment.(v) > t.hi.(v) +. epsilon
      then ok := false
    done;
    if not !ok then None
    else begin
      let m = ref infinity in
      List.iter
        (fun { i; j; offset } ->
          let slack =
            if i = j then Float.abs offset
            else Float.abs (assignment.(i) +. offset -. assignment.(j))
          in
          if slack < !m then m := slack)
        t.seps;
      List.iter
        (fun (v, center) ->
          let slack = Float.abs (assignment.(v) -. center) in
          if slack < !m then m := slack)
        t.forbidden;
      Some !m
    end
  end

(* Variables connected (transitively) by binary separations must be placed
   together; everything else is independent.  Self-sidebands and forbidden
   zones are unary, so they never join components.  Ordering is inherited
   from Graph.components: each component ascending, components by smallest
   variable — a pure function of the problem, which is what keeps the
   decomposed solve deterministic at any job count. *)
let component_partition t =
  let g = Fastsc_graphlib.Graph.create t.n in
  List.iter
    (fun { i; j; _ } -> if i <> j then Fastsc_graphlib.Graph.add_edge g i j)
    t.seps;
  Fastsc_graphlib.Graph.components g

(* Restrict the problem to one component.  [globals.(k)] is the original id
   of local variable [k]; seps and forbidden keep their relative list order,
   so the subproblem built for the whole variable set is search-equivalent
   to the original problem. *)
let restrict t comp =
  let globals = Array.of_list comp in
  let n' = Array.length globals in
  let local_of = Array.make t.n (-1) in
  Array.iteri (fun k v -> local_of.(v) <- k) globals;
  let sub =
    {
      n = n';
      lo = Array.map (fun v -> t.lo.(v)) globals;
      hi = Array.map (fun v -> t.hi.(v)) globals;
      seps =
        List.filter_map
          (fun { i; j; offset } ->
            if local_of.(i) >= 0 && local_of.(j) >= 0 then
              Some { i = local_of.(i); j = local_of.(j); offset }
            else None)
          t.seps;
      forbidden =
        List.filter_map
          (fun (v, center) ->
            if local_of.(v) >= 0 then Some (local_of.(v), center) else None)
          t.forbidden;
    }
  in
  (sub, globals)

(* Split a global sweep order into per-component local orders: each component
   keeps the relative order its members had in the global list. *)
let split_order t order comps =
  let rank = Array.make t.n 0 in
  List.iteri (fun k v -> rank.(v) <- k) order;
  List.map
    (fun comp ->
      let local_of = Hashtbl.create (List.length comp) in
      List.iteri (fun k v -> Hashtbl.replace local_of v k) comp;
      List.map
        (fun v -> Hashtbl.find local_of v)
        (List.sort (fun a b -> compare rank.(a) rank.(b)) comp))
    comps

let validate_order t order =
  if List.length order <> t.n then
    invalid_arg "Smt.solve: order must list every variable exactly once"

(* Solve one component's subproblem; [sub_order], when given, is already in
   local variable ids. *)
let solve_sub ?sub_order sub ~delta =
  match sub_order with
  | Some o -> solve_ordered sub ~delta o
  | None -> if sub.n = 0 then Some [||] else solve_any sub ~delta

let merge_component_witnesses t pieces =
  let witness = Array.make t.n nan in
  List.iter
    (fun (globals, w) -> Array.iteri (fun k v -> witness.(v) <- w.(k)) globals)
    pieces;
  witness

(* Monolithic whole-problem search: the pre-decomposition code path, kept as
   the benchmark baseline and for callers that want the global monotone
   contract of [~order] (an order spanning components couples them through
   the shared floor, which per-component solving deliberately does not). *)
let solve_monolithic ?order t ~delta =
  if not (self_constraints_ok t ~delta) then None
  else
    let result =
      match order with
      | Some order ->
        validate_order t order;
        solve_ordered t ~delta order
      | None -> if t.n = 0 then Some [||] else solve_any t ~delta
    in
    match result with
    | Some assignment ->
      assert (check t ~delta assignment);
      Some assignment
    | None -> None

(* The unordered path decomposes: independent components are solved one by
   one on their own restricted problems.  Single-component problems (every
   complete-graph allocation the compiler builds today) dispatch to the
   exact pre-decomposition search, so existing witnesses are bit-identical.
   The ordered path stays monolithic — the global monotone contract spans
   components by design. *)
let solve ?order t ~delta =
  match order with
  | Some _ -> solve_monolithic ?order t ~delta
  | None ->
    if not (self_constraints_ok t ~delta) then None
    else if t.n = 0 then Some [||]
    else begin
      let result =
        match component_partition t with
        | [] | [ _ ] -> solve_any t ~delta
        | comps ->
          let rec go acc = function
            | [] -> Some (merge_component_witnesses t (List.rev acc))
            | comp :: rest -> (
              let sub, globals = restrict t comp in
              match solve_sub sub ~delta with
              | None -> None
              | Some w -> go ((globals, w) :: acc) rest)
          in
          go [] comps
      in
      match result with
      | Some assignment ->
        assert (check t ~delta assignment);
        Some assignment
      | None -> None
    end

(* Pool-parallel component solve.  Byte-identical to {!solve}: components and
   their subproblems are pure functions of [t], each cell runs the same
   search [solve] would run sequentially, and Pool.map stores results by
   input index — so the merged witness cannot depend on jobs or scheduling.
   With [~order] each component receives the restriction of the global order
   (no cross-component floor chaining, unlike monolithic [solve ~order]). *)
let solve_components ?jobs ?order t ~delta =
  if not (self_constraints_ok t ~delta) then None
  else if t.n = 0 then Some [||]
  else begin
    Option.iter (validate_order t) order;
    let comps = component_partition t in
    let sub_orders =
      match order with
      | None -> List.map (fun _ -> None) comps
      | Some order -> List.map Option.some (split_order t order comps)
    in
    let cells = List.combine comps sub_orders in
    let pieces =
      Fastsc_util.Pool.map ?jobs
        (fun (comp, sub_order) ->
          let sub, globals = restrict t comp in
          Option.map (fun w -> (globals, w)) (solve_sub ?sub_order sub ~delta))
        cells
    in
    if List.exists Option.is_none pieces then None
    else begin
      let witness = merge_component_witnesses t (List.map Option.get pieces) in
      assert (check t ~delta witness);
      Some witness
    end
  end

let widest_range t =
  let w = ref 0.0 in
  for v = 0 to t.n - 1 do
    w := Float.max !w (t.hi.(v) -. t.lo.(v))
  done;
  !w

(* One binary search = one "solve" for instrumentation purposes: the compiler
   passes report how many frequency-assignment searches a compilation paid
   for (the memoized Freq_alloc layer makes the delta between passes the
   interesting number).  Atomic so pool domains can solve concurrently. *)
let solve_counter = Atomic.make 0

let find_max_delta_count () = Atomic.get solve_counter

let reset_find_max_delta_count () = Atomic.set solve_counter 0

(* Respecting [order] means the witness must be non-decreasing along it; a
   warm witness from another moment need not be, so it is only accepted as a
   seed when it honours the contract the caller asked for. *)
let monotone_along order assignment =
  let rec walk = function
    | a :: (b :: _ as rest) ->
      assignment.(a) <= assignment.(b) +. epsilon && walk rest
    | _ -> true
  in
  walk order

let find_max_delta ?order ?(tolerance = 1e-4) ?delta_hi ?warm t =
  Atomic.incr solve_counter;
  deadline_check "find_max_delta";
  let delta_hi = match delta_hi with Some d -> d | None -> Float.max tolerance (widest_range t) in
  (* Warm start: a previous witness with positive margin [m] is feasible for
     every delta <= m, so it replaces the delta = 0 probe and opens the
     search at [lo = m].  Invalid or non-monotone (under [order]) witnesses
     fall back to the cold path — warm starting never changes feasibility,
     only how much of the binary search is skipped. *)
  let seeded =
    match warm with
    | None -> None
    | Some w -> (
      match margin t w with
      | Some m
        when m > 0.0
             && (match order with None -> true | Some o -> monotone_along o w)
        -> Some (Float.min m delta_hi, Array.copy w)
      | _ -> None)
  in
  let base =
    match seeded with
    | Some _ -> seeded
    | None -> (
      match solve ?order t ~delta:0.0 with
      | None -> None
      | Some witness0 -> Some (0.0, witness0))
  in
  match base with
  | None -> None
  | Some (d0, w0) ->
    let best = ref (d0, w0) in
    let lo = ref d0 and hi = ref delta_hi in
    (* Check the top first: if delta_hi itself is feasible we are done. *)
    if !lo < delta_hi then (
      match solve ?order t ~delta:delta_hi with
      | Some w ->
        best := (delta_hi, w);
        lo := delta_hi
      | None -> ());
    while !hi -. !lo > tolerance do
      deadline_check "find_max_delta";
      let mid = (!lo +. !hi) /. 2.0 in
      match solve ?order t ~delta:mid with
      | Some w ->
        best := (mid, w);
        lo := mid
      | None -> hi := mid
    done;
    Some !best

type component_solution = { members : int list; local_delta : float }

(* Per-component binary searches, fanned over the pool.  The merged maximum
   is the min over components (the binding component caps the global delta),
   and each per-component witness stays feasible at that smaller value, so
   the merged witness verifies at the merged delta.  Each component pays its
   own find_max_delta (own solve_counter tick) — that is the solve count the
   trace reports.  Deterministic at any job count: components, subproblems
   and per-component searches are pure functions of [t], and results merge
   in component index order. *)
let find_max_delta_components ?jobs ?order ?(tolerance = 1e-4) ?delta_hi ?warm t =
  let delta_hi = match delta_hi with Some d -> d | None -> Float.max tolerance (widest_range t) in
  Option.iter (validate_order t) order;
  match component_partition t with
  | [] ->
    Option.map
      (fun (d, w) -> ((d, w), []))
      (find_max_delta ?order ~tolerance ~delta_hi ?warm t)
  | [ comp ] ->
    Option.map
      (fun (d, w) -> ((d, w), [ { members = comp; local_delta = d } ]))
      (find_max_delta ?order ~tolerance ~delta_hi ?warm t)
  | comps ->
    let sub_orders =
      match order with
      | None -> List.map (fun _ -> None) comps
      | Some order -> List.map Option.some (split_order t order comps)
    in
    let cells = List.combine comps sub_orders in
    let results =
      (* inherit_ambient: component solves run on worker domains, which have
         their own ambient deadline state — re-install the caller's so the
         per-component searches stay cancellable *)
      Fastsc_util.Pool.map ?jobs
        (Fastsc_util.Deadline.inherit_ambient (fun (comp, sub_order) ->
          let sub, globals = restrict t comp in
          let sub_warm =
            Option.map (fun w -> Array.map (fun v -> w.(v)) globals) warm
          in
          Option.map
            (fun (d, w) -> (comp, globals, d, w))
            (find_max_delta ?order:sub_order ~tolerance ~delta_hi ?warm:sub_warm
               sub)))
        cells
    in
    if List.exists Option.is_none results then None
    else begin
      let results = List.map Option.get results in
      let delta =
        List.fold_left (fun acc (_, _, d, _) -> Float.min acc d) delta_hi results
      in
      let witness =
        merge_component_witnesses t
          (List.map (fun (_, globals, _, w) -> (globals, w)) results)
      in
      assert (verify t ~delta witness);
      let infos =
        List.map
          (fun (comp, _, d, _) -> { members = comp; local_delta = d })
          results
      in
      Some ((delta, witness), infos)
    end

(* Ordering portfolio: race candidate sweep orders as pool tasks and keep the
   lowest-index feasible one.  Task [i] may be cancelled only once some task
   [j < i] has already succeeded, so every task below the eventual winner
   always runs to completion — the winner is a pure function of the problem
   and the portfolio, independent of jobs or scheduling. *)
let solve_portfolio ?jobs t ~delta ~orders =
  if orders = [] then invalid_arg "Smt.solve_portfolio: empty portfolio";
  List.iter (validate_order t) orders;
  if not (self_constraints_ok t ~delta) then None
  else begin
    let winner = Atomic.make max_int in
    let claim i =
      let rec spin () =
        let cur = Atomic.get winner in
        if i < cur && not (Atomic.compare_and_set winner cur i) then spin ()
      in
      spin ()
    in
    let attempts =
      (* same cross-domain deadline bridge as find_max_delta_components *)
      let run_cell =
        Fastsc_util.Deadline.inherit_ambient (fun (i, order) ->
            if Atomic.get winner < i then None
            else
              let stop () = Atomic.get winner < i in
              match solve_ordered ~stop t ~delta order with
              | Some w ->
                claim i;
                Some w
              | None -> None)
      in
      Fastsc_util.Pool.mapi ?jobs (fun i order -> run_cell (i, order)) orders
    in
    let rec first i = function
      | [] -> None
      | Some w :: _ -> Some (i, w)
      | None :: rest -> first (i + 1) rest
    in
    match first 0 attempts with
    | Some (i, w) ->
      assert (check t ~delta w);
      Some (i, w)
    | None -> None
  end

let find_max_delta_portfolio ?jobs ?(tolerance = 1e-4) ?delta_hi ~orders t =
  Atomic.incr solve_counter;
  deadline_check "find_max_delta_portfolio";
  let delta_hi = match delta_hi with Some d -> d | None -> Float.max tolerance (widest_range t) in
  match solve_portfolio ?jobs t ~delta:0.0 ~orders with
  | None -> None
  | Some (i0, w0) ->
    let best = ref (i0, 0.0, w0) in
    let lo = ref 0.0 and hi = ref delta_hi in
    (match solve_portfolio ?jobs t ~delta:delta_hi ~orders with
    | Some (i, w) ->
      best := (i, delta_hi, w);
      lo := delta_hi
    | None -> ());
    while !hi -. !lo > tolerance do
      deadline_check "find_max_delta_portfolio";
      let mid = (!lo +. !hi) /. 2.0 in
      match solve_portfolio ?jobs t ~delta:mid ~orders with
      | Some (i, w) ->
        best := (i, mid, w);
        lo := mid
      | None -> hi := mid
    done;
    let i, d, w = !best in
    Some (i, (d, w))
