type sep = { i : int; j : int; offset : float }

type t = {
  n : int;
  lo : float array;
  hi : float array;
  mutable seps : sep list;
  mutable forbidden : (int * float) list;
}

let epsilon = 1e-9

let create ?(lo = 0.0) ?(hi = 1.0) n =
  if n < 0 then invalid_arg "Smt.create: negative variable count";
  if lo > hi then invalid_arg "Smt.create: lo > hi";
  { n; lo = Array.make n lo; hi = Array.make n hi; seps = []; forbidden = [] }

let n_vars t = t.n

let check_var t v =
  if v < 0 || v >= t.n then invalid_arg "Smt: variable out of range"

let set_bounds t v ~lo ~hi =
  check_var t v;
  if lo > hi then invalid_arg "Smt.set_bounds: lo > hi";
  t.lo.(v) <- lo;
  t.hi.(v) <- hi

let add_separation ?(offset = 0.0) t i j =
  check_var t i;
  check_var t j;
  if i = j && offset = 0.0 then
    invalid_arg "Smt.add_separation: |x - x| >= delta is unsatisfiable";
  t.seps <- { i; j; offset } :: t.seps

let add_forbidden t v ~center =
  check_var t v;
  t.forbidden <- (v, center) :: t.forbidden;
  t

(* Open intervals that x_v must avoid, given currently placed values. *)
let blocked_intervals t ~delta placed v =
  let intervals = ref [] in
  let avoid center = intervals := (center -. delta, center +. delta) :: !intervals in
  List.iter
    (fun { i; j; offset } ->
      if i = v && j <> v then (
        match placed.(j) with
        | Some xj -> avoid (xj -. offset)
        | None -> ())
      else if j = v && i <> v then (
        match placed.(i) with
        | Some xi -> avoid (xi +. offset)
        | None -> ()))
    t.seps;
  List.iter (fun (u, center) -> if u = v then avoid center) t.forbidden;
  List.sort compare !intervals

(* Self-sideband constraints |offset| >= delta do not depend on the values. *)
let self_constraints_ok t ~delta =
  List.for_all
    (fun { i; j; offset } -> i <> j || Float.abs offset +. epsilon >= delta)
    t.seps

(* Smallest value >= start that avoids every interval; None if it escapes
   [hi].  Blocked intervals are open, so landing exactly on an endpoint is
   allowed.

   The list arrives sorted by (a, b), and one forward pass reaches the same
   fixpoint the old retry-until-stable loop computed.  An interval whose
   upper end sits more than epsilon below the running maximum is dominated:
   it starts no earlier than some retained interval (sort order) and ends
   strictly inside it, so any value it could bump is bumped at least as far
   by the dominating interval first — merging it away changes nothing.
   Among the survivors the upper ends are non-decreasing to within epsilon,
   so a jump to some b can never land strictly inside an {e earlier}
   interval, and a single left-to-right scan visits every interval that can
   still fire. *)
let resolve_upward intervals ~hi start =
  let value = ref start in
  let bmax = ref neg_infinity in
  List.iter
    (fun (a, b) ->
      if b >= !bmax -. epsilon then begin
        if !value > a +. epsilon && !value < b -. epsilon then value := b;
        if b > !bmax then bmax := b
      end)
    intervals;
  if !value <= hi +. epsilon then Some (Float.min !value hi) else None

(* Candidate values for backtracking: the minimal feasible one plus the upper
   endpoints of blocked intervals above it, each re-resolved against the
   remaining intervals (any optimal solution can be normalised so every
   variable sits at such a point). *)
let candidates t ~delta placed v ~floor =
  let intervals = blocked_intervals t ~delta placed v in
  let hi = t.hi.(v) in
  match resolve_upward intervals ~hi (Float.max floor t.lo.(v)) with
  | None -> []
  | Some least ->
    let ends =
      List.filter_map
        (fun (_, b) ->
          if b > least +. epsilon then resolve_upward intervals ~hi b else None)
        intervals
    in
    least :: List.sort_uniq compare (List.filter (fun x -> x > least +. epsilon) ends)

let solve_ordered t ~delta order =
  let placed = Array.make t.n None in
  let rec place remaining floor =
    match remaining with
    | [] -> true
    | v :: rest ->
      let try_value value =
        placed.(v) <- Some value;
        if place rest value then true
        else begin
          placed.(v) <- None;
          false
        end
      in
      List.exists try_value (candidates t ~delta placed v ~floor)
  in
  if place order neg_infinity then
    Some (Array.map (function Some x -> x | None -> nan) placed)
  else None

let solve_any t ~delta =
  let placed = Array.make t.n None in
  let budget = ref 200_000 in
  let rec place unplaced floor =
    decr budget;
    if !budget <= 0 then false
    else
      match unplaced with
      | [] -> true
      | _ ->
        List.exists
          (fun v ->
            let rest = List.filter (fun u -> u <> v) unplaced in
            let try_value value =
              placed.(v) <- Some value;
              if place rest value then true
              else begin
                placed.(v) <- None;
                false
              end
            in
            List.exists try_value (candidates t ~delta placed v ~floor))
          unplaced
  in
  if place (List.init t.n Fun.id) neg_infinity then
    Some (Array.map (function Some x -> x | None -> nan) placed)
  else None

type violation =
  | Length_mismatch of int
  | Not_finite of int
  | Out_of_bounds of int
  | Separation_violated of int * int * float
  | Forbidden_violated of int * float

let pp_violation ppf = function
  | Length_mismatch n -> Format.fprintf ppf "assignment has %d values" n
  | Not_finite v -> Format.fprintf ppf "x%d is not finite" v
  | Out_of_bounds v -> Format.fprintf ppf "x%d outside its bounds" v
  | Separation_violated (i, j, offset) ->
    if offset = 0.0 then Format.fprintf ppf "|x%d - x%d| < delta" i j
    else Format.fprintf ppf "|x%d %+g - x%d| < delta" i offset j
  | Forbidden_violated (v, center) ->
    Format.fprintf ppf "x%d inside the forbidden zone around %g" v center

(* All comparisons carry the same epsilon slack the solver uses, so witnesses
   sitting exactly on a boundary (two variables at precisely delta apart, a
   value landing on an interval endpoint) verify as satisfying.  Non-finite
   values are rejected explicitly: every float comparison against NaN is
   false, so without the finiteness pass an all-NaN array would sail through
   the bounds and separation loops untouched. *)
let violations t ~delta assignment =
  if Array.length assignment <> t.n then [ Length_mismatch (Array.length assignment) ]
  else begin
    let found = ref [] in
    let report v = found := v :: !found in
    for v = 0 to t.n - 1 do
      if not (Float.is_finite assignment.(v)) then report (Not_finite v)
      else if assignment.(v) < t.lo.(v) -. epsilon || assignment.(v) > t.hi.(v) +. epsilon
      then report (Out_of_bounds v)
    done;
    (* seps is kept newest-first; walk insertion order for a stable report *)
    List.iter
      (fun { i; j; offset } ->
        let broken =
          if i = j then Float.abs offset +. epsilon < delta
          else Float.abs (assignment.(i) +. offset -. assignment.(j)) +. epsilon < delta
        in
        if broken then report (Separation_violated (i, j, offset)))
      (List.rev t.seps);
    List.iter
      (fun (v, center) ->
        if Float.abs (assignment.(v) -. center) +. epsilon < delta then
          report (Forbidden_violated (v, center)))
      (List.rev t.forbidden);
    List.rev !found
  end

let verify t ~delta assignment = violations t ~delta assignment = []

let check = verify

let solve ?order t ~delta =
  if not (self_constraints_ok t ~delta) then None
  else
    let result =
      match order with
      | Some order ->
        if List.length order <> t.n then
          invalid_arg "Smt.solve: order must list every variable exactly once";
        solve_ordered t ~delta order
      | None -> if t.n = 0 then Some [||] else solve_any t ~delta
    in
    match result with
    | Some assignment ->
      assert (check t ~delta assignment);
      Some assignment
    | None -> None

let widest_range t =
  let w = ref 0.0 in
  for v = 0 to t.n - 1 do
    w := Float.max !w (t.hi.(v) -. t.lo.(v))
  done;
  !w

(* One binary search = one "solve" for instrumentation purposes: the compiler
   passes report how many frequency-assignment searches a compilation paid
   for (the memoized Freq_alloc layer makes the delta between passes the
   interesting number).  Atomic so pool domains can solve concurrently. *)
let solve_counter = Atomic.make 0

let find_max_delta_count () = Atomic.get solve_counter

let reset_find_max_delta_count () = Atomic.set solve_counter 0

let find_max_delta ?order ?(tolerance = 1e-4) ?delta_hi t =
  Atomic.incr solve_counter;
  let delta_hi = match delta_hi with Some d -> d | None -> Float.max tolerance (widest_range t) in
  match solve ?order t ~delta:0.0 with
  | None -> None
  | Some witness0 ->
    let best = ref (0.0, witness0) in
    let lo = ref 0.0 and hi = ref delta_hi in
    (* Check the top first: if delta_hi itself is feasible we are done. *)
    (match solve ?order t ~delta:delta_hi with
    | Some w ->
      best := (delta_hi, w);
      lo := delta_hi
    | None -> ());
    while !hi -. !lo > tolerance do
      let mid = (!lo +. !hi) /. 2.0 in
      match solve ?order t ~delta:mid with
      | Some w ->
        best := (mid, w);
        lo := mid
      | None -> hi := mid
    done;
    Some !best
