(** Separation-constraint solver over bounded reals.

    This module replaces the Z3 usage of the paper's reference implementation
    (§V-B3).  The compiler's frequency-assignment subproblem is: given one
    real variable per color, bounds [lo <= x_c <= hi] (eq. 1), and pairwise
    constraints [|x_i + offset - x_j| >= delta] — offset 0 for the plain
    separation of eq. 2 and offset = anharmonicity for the sideband
    separation of eq. 3 — find a feasible assignment, and find the largest
    [delta] for which one exists (the paper's [smt_find] binary search).

    The number of variables equals the number of colors, which the
    compilation pipeline keeps small (§VII-C), so a complete backtracking
    search over value orderings is affordable and exact.  When the caller
    supplies a total [order] (the paper orders colors by multiplicity so that
    busier colors get higher frequencies), the search is restricted to
    assignments respecting that order. *)

type t
(** A problem instance; mutable while constraints are added. *)

val create : ?lo:float -> ?hi:float -> int -> t
(** [create n] makes a problem with [n] variables, each bounded by the given
    default range (defaults [0., 1.]).
    @raise Invalid_argument if [n < 0] or [lo > hi]. *)

val n_vars : t -> int

val set_bounds : t -> int -> lo:float -> hi:float -> unit
(** Override the bounds of one variable. *)

val add_separation : ?offset:float -> t -> int -> int -> unit
(** [add_separation ~offset t i j] records [|x_i + offset - x_j| >= delta]
    (with [delta] supplied at solve time).  [i = j] with [offset <> 0.] is
    allowed and constrains a variable against its own sideband; [i = j] with
    [offset = 0.] is rejected as unsatisfiable for positive [delta]. *)

val add_forbidden : t -> int -> center:float -> t
(** [add_forbidden t i ~center] forbids [x_i] from the open interval
    [(center - delta, center + delta)] — used to keep interaction frequencies
    away from fixed parked neighbours.  Returns [t] for chaining. *)

val solve : ?order:int list -> t -> delta:float -> float array option
(** [solve t ~delta] finds a feasible assignment or [None].  With [order],
    the assignment additionally satisfies
    [x_order(0) <= x_order(1) <= ...]. *)

type violation =
  | Length_mismatch of int  (** Assignment length (problem size expected). *)
  | Not_finite of int  (** Variable holding NaN or an infinity. *)
  | Out_of_bounds of int  (** Variable outside its [lo, hi] range. *)
  | Separation_violated of int * int * float
      (** [(i, j, offset)] with [|x_i + offset - x_j| < delta]. *)
  | Forbidden_violated of int * float
      (** [(i, center)] with [x_i] inside the forbidden interval. *)

val pp_violation : Format.formatter -> violation -> unit

val violations : t -> delta:float -> float array -> violation list
(** Every constraint the assignment breaks at the given [delta], in a
    deterministic order (length, finiteness, bounds, separations, forbidden
    zones).  Comparisons carry a small epsilon slack so assignments exactly
    at the boundary — e.g. two variables separated by precisely [delta] —
    verify as satisfying.  Non-finite values are violations: an all-NaN
    array satisfies no constraint system. *)

val verify : t -> delta:float -> float array -> bool
(** Independent verifier: does the assignment satisfy bounds, separations and
    forbidden zones at the given [delta]?  Equivalent to
    [violations t ~delta a = []] — an oracle for any assignment regardless of
    which search path produced it.  Used by the property-based suites and as
    an internal sanity assertion. *)

val check : t -> delta:float -> float array -> bool
(** Alias of {!verify}, kept for existing callers. *)

val find_max_delta_count : unit -> int
(** Process-wide count of {!find_max_delta} invocations (each one full binary
    search).  Atomic, so safe to read while pool domains solve; the compiler's
    pass instrumentation reports per-pass deltas of this counter. *)

val reset_find_max_delta_count : unit -> unit
(** Zero the {!find_max_delta_count} counter (tests, cold-cost measurements). *)

val find_max_delta :
  ?order:int list -> ?tolerance:float -> ?delta_hi:float -> t ->
  (float * float array) option
(** Binary search for the maximum feasible [delta] (within [tolerance],
    default [1e-4]); returns the witness assignment found at that [delta].
    [None] when even [delta = 0] is infeasible.  [delta_hi] bounds the search
    from above (defaults to the widest variable range). *)
