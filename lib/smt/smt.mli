(** Separation-constraint solver over bounded reals.

    This module replaces the Z3 usage of the paper's reference implementation
    (§V-B3).  The compiler's frequency-assignment subproblem is: given one
    real variable per color, bounds [lo <= x_c <= hi] (eq. 1), and pairwise
    constraints [|x_i + offset - x_j| >= delta] — offset 0 for the plain
    separation of eq. 2 and offset = anharmonicity for the sideband
    separation of eq. 3 — find a feasible assignment, and find the largest
    [delta] for which one exists (the paper's [smt_find] binary search).

    The number of variables equals the number of colors, which the
    compilation pipeline keeps small (§VII-C), so a complete backtracking
    search over value orderings is affordable and exact.  When the caller
    supplies a total [order] (the paper orders colors by multiplicity so that
    busier colors get higher frequencies), the search is restricted to
    assignments respecting that order. *)

type t
(** A problem instance; mutable while constraints are added. *)

val create : ?lo:float -> ?hi:float -> int -> t
(** [create n] makes a problem with [n] variables, each bounded by the given
    default range (defaults [0., 1.]).
    @raise Invalid_argument if [n < 0] or [lo > hi]. *)

val n_vars : t -> int

val set_bounds : t -> int -> lo:float -> hi:float -> unit
(** Override the bounds of one variable. *)

val add_separation : ?offset:float -> t -> int -> int -> unit
(** [add_separation ~offset t i j] records [|x_i + offset - x_j| >= delta]
    (with [delta] supplied at solve time).  [i = j] with [offset <> 0.] is
    allowed and constrains a variable against its own sideband; [i = j] with
    [offset = 0.] is rejected as unsatisfiable for positive [delta]. *)

val add_forbidden : t -> int -> center:float -> t
(** [add_forbidden t i ~center] forbids [x_i] from the open interval
    [(center - delta, center + delta)] — used to keep interaction frequencies
    away from fixed parked neighbours.  Returns [t] for chaining. *)

val solve : ?order:int list -> t -> delta:float -> float array option
(** [solve t ~delta] finds a feasible assignment or [None].  With [order],
    the assignment additionally satisfies
    [x_order(0) <= x_order(1) <= ...].

    Without [order] the search decomposes: independent connected components
    of the constraint graph (see {!component_partition}) are solved on their
    own restricted subproblems and the witnesses merged.  Single-component
    problems run the exact monolithic search, so witnesses for the
    complete-graph problems the compiler builds are unchanged.  With [order]
    the search stays monolithic — the global monotone chain deliberately
    spans components. *)

val solve_monolithic : ?order:int list -> t -> delta:float -> float array option
(** The pre-decomposition whole-problem search, kept as the scaling
    benchmark baseline.  Identical to {!solve} on single-component problems
    and whenever [order] is given. *)

val solve_components :
  ?jobs:int -> ?order:int list -> t -> delta:float -> float array option
(** Pool-parallel variant of the decomposed {!solve}: each component is a
    pool task.  Byte-identical to [solve t ~delta] (without [order]) at any
    [jobs] — subproblems are pure functions of [t] and results merge in
    component index order.  With [order], each component receives the
    restriction of the global order (its members in global relative order);
    unlike monolithic [solve ~order] there is no cross-component floor, so
    the two ordered variants may return different witnesses. *)

val component_partition : t -> int list list
(** Connected components of the constraint graph (variables joined by binary
    separations; self-sidebands and forbidden zones are unary and join
    nothing).  Each component is sorted ascending, components ordered by
    smallest variable — the determinism anchor for the decomposed solvers. *)

val margin : t -> float array -> float option
(** [margin t a] is the smallest constraint slack of [a]: the largest delta
    at which [a] still verifies ([verify t ~delta:m a] holds whenever
    [m <= margin]).  [None] when [a] is invalid independently of delta
    (wrong length, non-finite, out of bounds).  Feeds warm starts: a
    previous witness with margin [m] lets {!find_max_delta} open its binary
    search at [lo = m]. *)

type violation =
  | Length_mismatch of int  (** Assignment length (problem size expected). *)
  | Not_finite of int  (** Variable holding NaN or an infinity. *)
  | Out_of_bounds of int  (** Variable outside its [lo, hi] range. *)
  | Separation_violated of int * int * float
      (** [(i, j, offset)] with [|x_i + offset - x_j| < delta]. *)
  | Forbidden_violated of int * float
      (** [(i, center)] with [x_i] inside the forbidden interval. *)

val pp_violation : Format.formatter -> violation -> unit

val violations : t -> delta:float -> float array -> violation list
(** Every constraint the assignment breaks at the given [delta], in a
    deterministic order (length, finiteness, bounds, separations, forbidden
    zones).  Comparisons carry a small epsilon slack so assignments exactly
    at the boundary — e.g. two variables separated by precisely [delta] —
    verify as satisfying.  Non-finite values are violations: an all-NaN
    array satisfies no constraint system. *)

val verify : t -> delta:float -> float array -> bool
(** Independent verifier: does the assignment satisfy bounds, separations and
    forbidden zones at the given [delta]?  Equivalent to
    [violations t ~delta a = []] — an oracle for any assignment regardless of
    which search path produced it.  Used by the property-based suites and as
    an internal sanity assertion. *)

val check : t -> delta:float -> float array -> bool
(** Alias of {!verify}, kept for existing callers. *)

val find_max_delta_count : unit -> int
(** Process-wide count of {!find_max_delta} invocations (each one full binary
    search).  Atomic, so safe to read while pool domains solve; the compiler's
    pass instrumentation reports per-pass deltas of this counter. *)

val reset_find_max_delta_count : unit -> unit
(** Zero the {!find_max_delta_count} counter (tests, cold-cost measurements). *)

val find_max_delta :
  ?order:int list -> ?tolerance:float -> ?delta_hi:float -> ?warm:float array ->
  t -> (float * float array) option
(** Binary search for the maximum feasible [delta] (within [tolerance],
    default [1e-4]); returns the witness assignment found at that [delta].
    [None] when even [delta = 0] is infeasible.  [delta_hi] bounds the search
    from above (defaults to the widest variable range).

    [warm] seeds the search with a previous witness: when it has positive
    {!margin} [m] (and is monotone along [order], if given) the delta = 0
    probe is skipped and the search opens at [lo = m], typically saving most
    of the feasible-side probes.  An invalid seed silently falls back to the
    cold path, so warm starting never changes feasibility — and because the
    ordered search only restricts the problem, a warm result can never beat
    the cold unordered maximum by more than [tolerance].

    Cooperative cancellation: all solver entry points poll the ambient
    {!Fastsc_util.Deadline} at chunk boundaries (per bisection probe, per
    256 search nodes) and raise [Deadline.Expired] once the budget is gone —
    never [None], so budget exhaustion cannot masquerade as infeasibility.
    Pool fan-outs ({!find_max_delta_components}, {!solve_portfolio})
    re-install the caller's ambient deadline on worker domains. *)

type component_solution = {
  members : int list;  (** Global variable ids of the component, ascending. *)
  local_delta : float;  (** That component's own maximum delta. *)
}

val find_max_delta_components :
  ?jobs:int -> ?order:int list -> ?tolerance:float -> ?delta_hi:float ->
  ?warm:float array -> t ->
  ((float * float array) * component_solution list) option
(** Decomposed {!find_max_delta}: each constraint-graph component runs its
    own binary search as a pool task (each ticking {!find_max_delta_count}
    once), the global maximum is the min over components, and the merged
    witness verifies at that delta.  Deterministic at any [jobs] — results
    merge in component index order.  Problems with at most one component
    delegate to {!find_max_delta}.  [warm]/[order] are restricted
    per-component (members in global relative order); [None] if any
    component is infeasible even at delta = 0. *)

val solve_portfolio :
  ?jobs:int -> t -> delta:float -> orders:int list list ->
  (int * float array) option
(** Race a portfolio of sweep orders as pool tasks; returns the
    lowest-index feasible order and its witness.  A task may be cancelled
    only once a lower-index task has succeeded, so every order below the
    winner runs to completion and the result is a pure function of the
    problem and portfolio — independent of [jobs] and scheduling.
    @raise Invalid_argument on an empty portfolio or a malformed order. *)

val find_max_delta_portfolio :
  ?jobs:int -> ?tolerance:float -> ?delta_hi:float -> orders:int list list ->
  t -> (int * (float * float array)) option
(** Binary search over {!solve_portfolio}: at each probed delta the portfolio
    races and the lowest-index feasible order wins.  Returns the winning
    order index of the final retained probe with its (delta, witness). *)
