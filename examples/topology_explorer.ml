(* Exploring device connectivity (paper §VII-F): how dense should a quantum
   chip's coupling graph be?

   Denser connectivity shortens routing (fewer SWAPs) but crowds the
   frequency spectrum.  This example sweeps express-cube topologies from a
   bare 1-D chain to a doubly-augmented grid, compiling the same program on
   each, and reports routing cost, colors, and success — reproducing the
   paper's observation that the best connectivity is "not too sparse nor
   denser than grid".

   Run with: dune exec examples/topology_explorer.exe *)

let () =
  let n = 16 in
  let topologies =
    [
      Topology.path n;
      Topology.express_1d n 4;
      Topology.express_1d n 2;
      Topology.grid 4 4;
      Topology.express_2d 4 4 2;
      Topology.complete n;
    ]
  in
  let circuit = Qaoa.circuit (Rng.create 3) ~n ~edge_prob:0.4 () in
  Printf.printf "program: qaoa(%d), %d logical gates (%d two-qubit)\n\n" n
    (Circuit.length circuit) (Circuit.n_two_qubit circuit);
  let t =
    Tablefmt.create
      [
        "topology"; "couplings"; "diameter"; "SWAPs"; "colors"; "depth"; "log10 success";
      ]
  in
  List.iter
    (fun topology ->
      let device = Device.create ~seed:2020 topology in
      let graph = Device.graph device in
      (* same placement rule as Compile.prepare's `Auto: fewer SWAPs wins *)
      let by_identity =
        Mapping.route ~placement:(Mapping.identity_placement graph circuit) graph circuit
      in
      let by_degree =
        Mapping.route ~placement:(Mapping.degree_placement graph circuit) graph circuit
      in
      let routed =
        if by_degree.Mapping.n_swaps < by_identity.Mapping.n_swaps then by_degree
        else by_identity
      in
      (* naming the algorithm via Compile also links the built-in registry *)
      let ctx =
        Pass.execute ~through:`Schedule
          ~algorithm:(Compile.algorithm_to_string Compile.Color_dynamic) device circuit
      in
      let m = Schedule.evaluate (Pass.Context.schedule_exn ctx) in
      Tablefmt.add_row t
        [
          topology.Topology.name;
          Tablefmt.cell_int (Graph.n_edges graph);
          Tablefmt.cell_int (Paths.diameter graph);
          Tablefmt.cell_int routed.Mapping.n_swaps;
          Tablefmt.cell_int (Pass.Context.stat_int ctx "max_colors_used");
          Tablefmt.cell_int m.Schedule.depth;
          Tablefmt.cell_float ~digits:2 m.Schedule.log10_success;
        ])
    topologies;
  Tablefmt.print t;
  print_endline
    "\n(sparse chains pay in SWAPs and depth; express hubs can even serialize\n\
     worse than the chain they augment.  Denser graphs route for free but put\n\
     more spectator couplings around every gate and are increasingly\n\
     unrealistic to fabricate and address — the paper targets the grid-like\n\
     middle of this spectrum for exactly that reason)"
