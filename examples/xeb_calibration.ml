(* Simultaneous-gate calibration with XEB circuits (paper §VI-B, [2]).

   Cross-entropy benchmarking stresses exactly the failure mode this work
   targets: layers of simultaneous two-qubit gates on neighbouring couplings.
   This example compiles xeb(16, p) for growing cycle counts p and shows how
   the naive compilation collapses while ColorDynamic tracks the
   tunable-coupler upper bound; it then prints the per-step frequency plan of
   one ColorDynamic cycle — the artifact a calibration engineer would load
   into the control stack (including the flux waveform of one qubit).

   Run with: dune exec examples/xeb_calibration.exe *)

let () =
  let device = Device.create ~seed:2020 (Topology.grid 4 4) in
  Format.printf "%a@.@." Device.pp_summary device;

  let xeb cycles =
    let classes = Baseline_gmon.edge_classes device in
    Xeb.circuit (Rng.create 5) ~graph:(Device.graph device) ~classes ~cycles ()
  in

  let t =
    Tablefmt.create
      [ "cycles"; "naive"; "gmon (eta=0)"; "uniform"; "color-dynamic" ]
  in
  List.iter
    (fun cycles ->
      let circuit = xeb cycles in
      let cell algorithm =
        let m = Schedule.evaluate (Compile.run algorithm device circuit) in
        Tablefmt.cell_float ~digits:2 m.Schedule.log10_success
      in
      Tablefmt.add_row t
        [
          Tablefmt.cell_int cycles;
          cell Compile.Naive;
          cell Compile.Gmon;
          cell Compile.Uniform;
          cell Compile.Color_dynamic;
        ])
    [ 1; 2; 4; 8; 12 ];
  Tablefmt.print t;
  print_endline "(log10 success; ColorDynamic stays near the tunable-coupler bound)\n";

  (* the frequency plan of the compiled circuit's busiest steps; the pipeline
     context carries any scheduler's per-compilation statistics *)
  let ctx =
    Pass.execute ~through:`Schedule
      ~algorithm:(Compile.algorithm_to_string Compile.Color_dynamic) device (xeb 5)
  in
  let schedule = Pass.Context.schedule_exn ctx in
  Printf.printf "ColorDynamic on xeb(16,5): %d steps, %d colors max, min separation %.3f GHz\n\n"
    (Schedule.depth schedule)
    (Pass.Context.stat_int ctx "max_colors_used")
    (Pass.Context.stat_float ctx "min_delta");
  List.iteri
    (fun i step ->
      let pairs = step.Schedule.interacting in
      if pairs <> [] then begin
        Printf.printf "step %2d (%4.0f ns):" i step.Schedule.duration;
        List.iter
          (fun (a, b) -> Printf.printf "  (%d,%d)@%.3fGHz" a b step.Schedule.freqs.(a))
          pairs;
        print_newline ()
      end)
    schedule.Schedule.steps;

  (* the control-stack view: one qubit's flux waveform across the program *)
  let q = 5 in
  Printf.printf "\nflux waveform of qubit %d (Phi0 units, one value per step):\n " q;
  List.iter (fun phi -> Printf.printf " %.3f" phi) (Schedule.flux_profile schedule q);
  print_newline ()
