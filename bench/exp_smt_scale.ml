(* SMT scaling benchmark: component-decomposed parallel separation solving
   against the monolithic whole-problem search, on per-moment crosstalk
   constraint problems drawn from large meshes.

   Each "moment" activates a random subset of a topology's couplings (one
   variable per active coupling, bounds [0, 1]) and constrains every
   crosstalk-adjacent active pair by |x_i - x_j| >= delta — the coupling-level
   frequency-allocation problem a scheduling cycle induces.  Four solvers run
   on the identical problems:

   - monolithic: binary search over [Smt.solve_monolithic] (the
     pre-decomposition whole-problem backtracking search, single-threaded);
   - decomposed: [Smt.find_max_delta_components] at jobs = 1 and jobs = N —
     results must be byte-identical (the determinism contract);
   - warm restart: the decomposed solver re-seeded with its own witness
     ([find_max_delta_components ~warm], the compiler's consecutive-moment
     seed) — components whose local maximum equals the seed's margin skip
     their entire binary search;
   - ordering portfolio: [Smt.find_max_delta_portfolio] racing
     degree-descending, index-ascending and witness-sorted sweep orders.

   A final section replays each moment's components through
   [Freq_alloc.interaction] (color-level problems, sizes capped at the mesh
   color bound) and reports the solver memo-cache hit rate.

   Emits BENCH_smt_scale.json.  Env knobs (the `make bench-smt-scale` smoke
   run shrinks them):
     FASTSC_SMT_SIZES     comma-separated mesh sides (default "10,20,50")
     FASTSC_SMT_MOMENTS   moments per size (default 2)
     FASTSC_SMT_DENSITY   active-coupling percentage (default 6)
     FASTSC_SMT_TOPOLOGY  grid | path | ring | heavy-hex | octagonal | express
     FASTSC_SMT_SCRUB     when set, zero every wall-clock-derived field (and
                          the jobs stamp) so JSON from different job counts
                          can be compared byte-for-byte *)

let valid_topologies = [ "grid"; "path"; "ring"; "heavy-hex"; "octagonal"; "express" ]

(* Unknown names exit 2 listing the valid ones, mirroring --algorithm. *)
let topology_of name size =
  match name with
  | "grid" -> Topology.grid size size
  | "path" -> Topology.path (size * size)
  | "ring" -> Topology.ring (max 3 (size * size))
  | "heavy-hex" -> Topology.heavy_hex size size
  | "octagonal" -> Topology.octagonal size size
  | "express" -> Topology.express_2d size size 4
  | other ->
    Printf.eprintf "bench smt-scale: unknown topology %S (valid: %s)\n%!" other
      (String.concat " " valid_topologies);
    exit 2

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let env_sizes () =
  match Sys.getenv_opt "FASTSC_SMT_SIZES" with
  | None -> [ 10; 20; 50 ]
  | Some spec ->
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 2 -> v
      | _ ->
        Printf.eprintf "bench smt-scale: FASTSC_SMT_SIZES needs integers >= 2, got %S\n%!" s;
        exit 2
    in
    List.map parse (String.split_on_char ',' spec)

let scrubbed () = Sys.getenv_opt "FASTSC_SMT_SCRUB" <> None

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tolerance = 1e-4

(* The baseline: [Smt.find_max_delta]'s exact bisection (zero probe, top
   probe, halving to tolerance) but every probe is the monolithic
   whole-problem search — what the solver did before decomposition. *)
let monolithic_max_delta t =
  let probes = ref 0 in
  let probe delta =
    incr probes;
    Smt.solve_monolithic t ~delta
  in
  let result =
    match probe 0.0 with
    | None -> None
    | Some w0 ->
      let best = ref (0.0, w0) in
      let lo = ref 0.0 and hi = ref 1.0 in
      (match probe 1.0 with
      | Some w ->
        best := (1.0, w);
        lo := 1.0
      | None -> ());
      while !hi -. !lo > tolerance do
        let mid = (!lo +. !hi) /. 2.0 in
        match probe mid with
        | Some w ->
          best := (mid, w);
          lo := mid
        | None -> hi := mid
      done;
      Some !best
  in
  (result, !probes)

(* One moment: a seeded random activation of the couplings, lowered to a
   separation problem over the active vertices.  Returns the problem, the
   count of variables, and the degree-descending sweep order. *)
let moment_problem xg rng ~density =
  let cg = xg.Crosstalk_graph.graph in
  let active =
    List.filter (fun _ -> Rng.float rng < density) (Graph.vertices cg)
  in
  let n = List.length active in
  let local = Array.make (Graph.n_vertices cg) (-1) in
  List.iteri (fun i v -> local.(v) <- i) active;
  let t = Smt.create n in
  let deg = Array.make n 0 in
  Graph.iter_edges
    (fun u v ->
      if local.(u) >= 0 && local.(v) >= 0 then begin
        Smt.add_separation t local.(u) local.(v);
        deg.(local.(u)) <- deg.(local.(u)) + 1;
        deg.(local.(v)) <- deg.(local.(v)) + 1
      end)
    cg;
  let order =
    List.sort
      (fun a b -> match compare deg.(b) deg.(a) with 0 -> compare a b | c -> c)
      (List.init n Fun.id)
  in
  (t, n, order)

type size_report = {
  size : int;
  qubits : int;
  couplings : int;
  articulation : int;
  moments : int;
  vars : int;
  components : int;
  component_max : int;
  mono_s : float;
  mono_probes : int;
  mono_delta_mean : float;
  dec1_s : float;
  decn_s : float;
  dec_solves : int;
  dec_delta_mean : float;
  identical : bool;
  verified : bool;
  warm_s : float;
  portfolio_s : float;
  winners : string;
  cache_solves : int;
  cache_hits : int;
  cache_hit_rate : float;
}

let run_size ~name ~moments ~density size =
  let topo = topology_of name size in
  let graph = topo.Topology.graph in
  let xg = Crosstalk_graph.build ~distance:1 graph in
  let couplings = Graph.n_vertices xg.Crosstalk_graph.graph in
  let articulation = List.length (Graph.articulation_points xg.Crosstalk_graph.graph) in
  let jobs = Pool.default_jobs () in
  let rng = Rng.create (2020 + size) in
  let measured = ref 0 in
  let vars = ref 0 in
  let components = ref 0 in
  let component_max = ref 0 in
  let comp_sizes = ref [] in
  let mono_s = ref 0.0 and mono_probes = ref 0 and mono_delta = ref 0.0 in
  let dec1_s = ref 0.0 and decn_s = ref 0.0 and dec_solves = ref 0 in
  let dec_delta = ref 0.0 in
  let identical = ref true and verified = ref true in
  let warm_s = ref 0.0 in
  let portfolio_s = ref 0.0 in
  let winner_tally = Array.make 3 0 in
  for _ = 1 to moments do
    let t, n, order = moment_problem xg rng ~density in
    if n > 0 then begin
      incr measured;
      vars := !vars + n;
      (* monolithic single-threaded baseline *)
      let (mono, probes), dt = time (fun () -> monolithic_max_delta t) in
      mono_s := !mono_s +. dt;
      mono_probes := !mono_probes + probes;
      let mono_delta_m, mono_w = Option.get mono in
      mono_delta := !mono_delta +. mono_delta_m;
      verified := !verified && Smt.verify t ~delta:mono_delta_m mono_w;
      (* decomposed, jobs = 1 then jobs = N: must agree bit for bit *)
      let r1, dt1 = time (fun () -> Smt.find_max_delta_components ~jobs:1 t) in
      dec1_s := !dec1_s +. dt1;
      let before = Smt.find_max_delta_count () in
      let rn, dtn = time (fun () -> Smt.find_max_delta_components ~jobs t) in
      decn_s := !decn_s +. dtn;
      dec_solves := !dec_solves + (Smt.find_max_delta_count () - before);
      let (d1, w1), _ = Option.get r1 in
      let (dn, wn), infos = Option.get rn in
      identical := !identical && d1 = dn && w1 = wn;
      verified := !verified && Smt.verify t ~delta:dn wn;
      dec_delta := !dec_delta +. dn;
      List.iter
        (fun (info : Smt.component_solution) ->
          let k = List.length info.Smt.members in
          incr components;
          if k > !component_max then component_max := k;
          comp_sizes := k :: !comp_sizes)
        infos;
      (* warm restart: the decomposed solver re-seeded with its own witness
         (cold reference time is the jobs = N decomposed leg above) *)
      let warm, dtw = time (fun () -> Smt.find_max_delta_components ~jobs ~warm:wn t) in
      warm_s := !warm_s +. dtw;
      let (dw, ww), _ = Option.get warm in
      verified := !verified && Smt.verify t ~delta:dw ww;
      (* a warm result can trail or lead the cold one only within tolerance *)
      verified := !verified && Float.abs (dw -. dn) <= 2.0 *. tolerance;
      (* ordering portfolio: degree-descending, index, witness-sorted *)
      let by_witness =
        List.sort
          (fun a b ->
            match compare wn.(a) wn.(b) with 0 -> compare a b | c -> c)
          (List.init n Fun.id)
      in
      let orders = [ order; List.init n Fun.id; by_witness ] in
      let pf, dtp = time (fun () -> Smt.find_max_delta_portfolio ~jobs ~orders t) in
      portfolio_s := !portfolio_s +. dtp;
      match pf with
      | Some (winner, (dp, wp)) ->
        winner_tally.(winner) <- winner_tally.(winner) + 1;
        verified := !verified && Smt.verify t ~delta:dp wp
      | None -> verified := false
    end
  done;
  (* cache section: each component as a color-level Freq_alloc problem *)
  Freq_alloc.reset_solver_cache ();
  let device = Device.create ~seed:Exp_common.device_seed topo in
  List.iter
    (fun k ->
      let c = min k Crosstalk_graph.max_colors_mesh in
      let multiplicity = Array.make c 0 in
      for i = 0 to k - 1 do
        multiplicity.(i mod c) <- multiplicity.(i mod c) + 1
      done;
      ignore (Freq_alloc.interaction device ~n_colors:c ~multiplicity))
    (List.rev !comp_sizes);
  let cache = Freq_alloc.solver_cache_stats () in
  let cache_solves = cache.Freq_alloc.hits + cache.Freq_alloc.misses in
  let m = float_of_int (max 1 !measured) in
  {
    size;
    qubits = Graph.n_vertices graph;
    couplings;
    articulation;
    moments = !measured;
    vars = !vars;
    components = !components;
    component_max = !component_max;
    mono_s = !mono_s;
    mono_probes = !mono_probes;
    mono_delta_mean = !mono_delta /. m;
    dec1_s = !dec1_s;
    decn_s = !decn_s;
    dec_solves = !dec_solves;
    dec_delta_mean = !dec_delta /. m;
    identical = !identical;
    verified = !verified;
    warm_s = !warm_s;
    portfolio_s = !portfolio_s;
    winners =
      String.concat " "
        (List.filteri
           (fun _ s -> s <> "")
           (List.mapi
              (fun i c -> if c = 0 then "" else Printf.sprintf "%d:%d" i c)
              (Array.to_list winner_tally)));
    cache_solves;
    cache_hits = cache.Freq_alloc.hits;
    cache_hit_rate =
      (if cache_solves = 0 then 0.0
       else float_of_int cache.Freq_alloc.hits /. float_of_int cache_solves);
  }

let run () =
  Exp_common.heading "SMT scaling: decomposed parallel vs monolithic separation solving";
  let sizes = env_sizes () in
  let moments = env_int "FASTSC_SMT_MOMENTS" 2 in
  let density = float_of_int (env_int "FASTSC_SMT_DENSITY" 6) /. 100.0 in
  let name = Option.value ~default:"grid" (Sys.getenv_opt "FASTSC_SMT_TOPOLOGY") in
  if not (List.mem name valid_topologies) then ignore (topology_of name 2);
  let scrub = scrubbed () in
  let ms s = if scrub then 0.0 else s *. 1000.0 in
  let ratio num den = if scrub || den <= 0.0 then 0.0 else num /. den in
  let reports = List.map (fun size -> run_size ~name ~moments ~density size) sizes in

  let t = Tablefmt.create
      [ "size"; "vars"; "comps"; "max"; "artic"; "mono ms"; "dec j1 ms"; "dec jN ms"; "speedup" ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%dx%d" r.size r.size;
          Tablefmt.cell_int r.vars;
          Tablefmt.cell_int r.components;
          Tablefmt.cell_int r.component_max;
          Tablefmt.cell_int r.articulation;
          Tablefmt.cell_float ~digits:2 (ms r.mono_s);
          Tablefmt.cell_float ~digits:2 (ms r.dec1_s);
          Tablefmt.cell_float ~digits:2 (ms r.decn_s);
          Printf.sprintf "%.1fx" (ratio r.mono_s r.decn_s);
        ])
    reports;
  Tablefmt.print t;

  let t = Tablefmt.create
      [ "size"; "warm ms"; "warm speedup"; "portfolio ms"; "winners"; "cache hit rate" ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%dx%d" r.size r.size;
          Tablefmt.cell_float ~digits:2 (ms r.warm_s);
          Printf.sprintf "%.1fx" (ratio r.decn_s r.warm_s);
          Tablefmt.cell_float ~digits:2 (ms r.portfolio_s);
          r.winners;
          Printf.sprintf "%.2f" r.cache_hit_rate;
        ])
    reports;
  Tablefmt.print t;
  List.iter
    (fun r ->
      Printf.printf
        "%dx%d: %d moments, mono %d probes (mean delta %.4f), dec %d solves (mean delta %.4f), identical=%b verified=%b\n"
        r.size r.size r.moments r.mono_probes r.mono_delta_mean r.dec_solves r.dec_delta_mean
        r.identical r.verified)
    reports;

  let doc =
    Json.Obj
      [
        ("label", Json.String "smt-scale");
        ("topology", Json.String name);
        ("jobs", Json.Int (if scrub then 0 else Pool.default_jobs ()));
        ("moments", Json.Int moments);
        ("density", Json.Float density);
        ("tolerance", Json.Float tolerance);
        ( "sizes",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("size", Json.Int r.size);
                     ("qubits", Json.Int r.qubits);
                     ("couplings", Json.Int r.couplings);
                     ("articulation_points", Json.Int r.articulation);
                     ("moments_measured", Json.Int r.moments);
                     ("vars", Json.Int r.vars);
                     ("components", Json.Int r.components);
                     ("component_max", Json.Int r.component_max);
                     ( "monolithic",
                       Json.Obj
                         [
                           ("ms", Json.Float (ms r.mono_s));
                           ("probes", Json.Int r.mono_probes);
                           ("delta_mean", Json.Float r.mono_delta_mean);
                         ] );
                     ( "decomposed",
                       Json.Obj
                         [
                           ("ms_jobs1", Json.Float (ms r.dec1_s));
                           ("ms_jobsn", Json.Float (ms r.decn_s));
                           ("solves", Json.Int r.dec_solves);
                           ("delta_mean", Json.Float r.dec_delta_mean);
                           ("speedup_vs_monolithic", Json.Float (ratio r.mono_s r.decn_s));
                         ] );
                     ("identical_any_jobs", Json.Bool r.identical);
                     ("witnesses_verified", Json.Bool r.verified);
                     ( "warm",
                       Json.Obj
                         [
                           ("warm_ms", Json.Float (ms r.warm_s));
                           ("speedup_vs_cold", Json.Float (ratio r.decn_s r.warm_s));
                         ] );
                     ( "portfolio",
                       Json.Obj
                         [
                           ("ms", Json.Float (ms r.portfolio_s));
                           ("winners", Json.String r.winners);
                         ] );
                     ( "cache",
                       Json.Obj
                         [
                           ("solves", Json.Int r.cache_solves);
                           ("hits", Json.Int r.cache_hits);
                           ("hit_rate", Json.Float r.cache_hit_rate);
                         ] );
                   ])
               reports) );
      ]
  in
  let oc = open_out "BENCH_smt_scale.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_smt_scale.json\n%!"
