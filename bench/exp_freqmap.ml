(* Fig 14 (Appendix A): concrete idle and interaction frequencies on a 4x4
   mesh, from the connectivity coloring and from one XEB time step of
   ColorDynamic. *)

let grid_of_freqs device freqs =
  let topo = Device.topology device in
  let coords = Option.get topo.Topology.coords in
  let rows = 1 + Array.fold_left (fun acc (r, _) -> max acc r) 0 coords in
  let cols = 1 + Array.fold_left (fun acc (_, c) -> max acc c) 0 coords in
  let buffer = Buffer.create 256 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let q = (r * cols) + c in
      Buffer.add_string buffer (Printf.sprintf "  %.3f" freqs.(q))
    done;
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer

let fig14 () =
  Exp_common.heading "Fig 14: example frequencies on a 4x4 mesh (GHz)";
  let device = Exp_common.mesh_device 16 in
  let idle = Freq_alloc.idle_per_qubit device in
  Printf.printf "Idle (parking) frequencies — checkerboard from the 2-coloring:\n%s"
    (grid_of_freqs device idle);
  let circuit = Exp_common.xeb_for_device device in
  let ctx = Exp_common.compile_context ~algorithm:Compile.Color_dynamic device circuit in
  let schedule = Pass.Context.schedule_exn ctx in
  Printf.printf "ColorDynamic on xeb(16,5): %d steps, max %d colors, min delta %.3f GHz\n"
    (Schedule.depth schedule)
    (Pass.Context.stat_int ctx "max_colors_used")
    (Pass.Context.stat_float ctx "min_delta");
  (* show the busiest step *)
  let busiest =
    List.fold_left
      (fun best step ->
        match best with
        | Some b
          when List.length b.Schedule.interacting >= List.length step.Schedule.interacting ->
          best
        | _ -> Some step)
      None schedule.Schedule.steps
  in
  match busiest with
  | None -> print_endline "empty schedule"
  | Some step ->
    Printf.printf
      "\nBusiest step (%d simultaneous two-qubit gates) — all qubit frequencies:\n%s"
      (List.length step.Schedule.interacting)
      (grid_of_freqs device step.Schedule.freqs);
    Printf.printf "Interacting pairs:";
    List.iter (fun (a, b) -> Printf.printf " (%d,%d)" a b) step.Schedule.interacting;
    Printf.printf "\n(idle qubits stay near the low sweet spot; interacting pairs sit\n";
    Printf.printf " on well-separated frequencies in the interaction region)\n"
