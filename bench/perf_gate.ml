(* Standalone entry point for the tier-W perf gate: compare a fresh benchmark
   JSON document against a committed baseline.

     perf_gate --baseline bench/baselines/sim.json --fresh BENCH_sim.json

   Exit codes: 0 the gate passes; 1 a regression (timing past tolerance or a
   deterministic field drifted); 2 the documents are unreadable or not
   comparable (IO error, JSON parse error, structural mismatch). *)

let usage = "perf_gate --baseline FILE --fresh FILE [--tolerance FRACTION] [--label NAME]"

let () =
  let baseline = ref "" and fresh = ref "" in
  let tolerance = ref Fastsc_verify.Perf_gate.default_tolerance in
  let label = ref "" in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline JSON");
      ("--fresh", Arg.Set_string fresh, "FILE freshly produced benchmark JSON");
      ( "--tolerance",
        Arg.Set_float tolerance,
        Printf.sprintf "FRACTION median-regression tolerance (default %.2f)"
          Fastsc_verify.Perf_gate.default_tolerance );
      ("--label", Arg.Set_string label, "NAME label for the report (default: fresh file name)");
    ]
  in
  Arg.parse spec (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon))) usage;
  if !baseline = "" || !fresh = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let label = if !label = "" then Filename.basename !fresh else !label in
  match
    ( Fastsc_util.Json.parse_file !baseline,
      Fastsc_util.Json.parse_file !fresh )
  with
  | exception Sys_error msg ->
    Printf.eprintf "perf_gate: %s\n" msg;
    exit 2
  | exception Fastsc_util.Json.Parse_error msg ->
    Printf.eprintf "perf_gate: %s\n" msg;
    exit 2
  | baseline_doc, fresh_doc ->
    let result = Fastsc_verify.Perf_gate.compare_docs ~baseline:baseline_doc ~fresh:fresh_doc in
    print_string (Fastsc_verify.Perf_gate.render ~tolerance:!tolerance ~label result);
    (match Fastsc_verify.Perf_gate.evaluate ~tolerance:!tolerance result with
    | Ok -> exit 0
    | Regression _ -> exit 1
    | Structural _ -> exit 2)
