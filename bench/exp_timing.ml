(* Bechamel timing suite: one Test.make per table/figure driver (the cost of
   regenerating each experiment) plus micro-benchmarks of the compiler's hot
   components (§VII-C: coloring and SMT are the leading costs). *)

open Bechamel
open Toolkit

let device9 = lazy (Exp_common.mesh_device 9)

let device16 = lazy (Exp_common.mesh_device 16)

let native16 =
  lazy
    (let device = Lazy.force device16 in
     Compile.prepare Compile.default_options device (Exp_common.xeb_for_device device))

let micro_tests () =
  [
    Test.make ~name:"crosstalk-graph-6x6"
      (Staged.stage (fun () ->
           ignore (Crosstalk_graph.build (Topology.grid 6 6).Topology.graph)));
    Test.make ~name:"welsh-powell-6x6-xg"
      (Staged.stage
         (let xg = Crosstalk_graph.build (Topology.grid 6 6).Topology.graph in
          fun () -> ignore (Coloring.welsh_powell xg.Crosstalk_graph.graph)));
    Test.make ~name:"smt-4-colors"
      (Staged.stage (fun () ->
           let device = Lazy.force device9 in
           ignore (Freq_alloc.interaction device ~n_colors:4 ~multiplicity:[| 4; 3; 2; 1 |])));
    Test.make ~name:"colordynamic-xeb16"
      (Staged.stage (fun () ->
           let device = Lazy.force device16 in
           ignore (Color_dynamic.run device (Lazy.force native16))));
    Test.make ~name:"route+decompose-xeb16"
      (Staged.stage (fun () ->
           let device = Lazy.force device16 in
           ignore
             (Compile.prepare Compile.default_options device (Exp_common.xeb_for_device device))));
    Test.make ~name:"evaluate-xeb16"
      (Staged.stage
         (let device = Lazy.force device16 in
          let schedule, _ = Color_dynamic.run device (Lazy.force native16) in
          fun () -> ignore (Schedule.evaluate schedule)));
    Test.make ~name:"lookahead-route-qaoa9"
      (Staged.stage
         (let device = Lazy.force device9 in
          let circuit = Qaoa.circuit (Rng.create 7) ~n:9 () in
          fun () -> ignore (Mapping.route_lookahead (Device.graph device) circuit)));
    Test.make ~name:"optimize-ising9"
      (Staged.stage
         (let device = Lazy.force device9 in
          let native =
            Compile.prepare Compile.default_options device (Ising.circuit ~n:9 ())
          in
          fun () -> ignore (Optimize.run native)));
    Test.make ~name:"chromatic-number-4x4-xg"
      (Staged.stage
         (let xg = Crosstalk_graph.build (Topology.grid 4 4).Topology.graph in
          fun () -> ignore (Coloring.chromatic_number xg.Crosstalk_graph.graph)));
    Test.make ~name:"pulse-lower-xeb16"
      (Staged.stage
         (let device = Lazy.force device16 in
          let schedule, _ = Color_dynamic.run device (Lazy.force native16) in
          fun () -> ignore (Control.lower schedule)));
  ]

let experiment_tests () =
  [
    Test.make ~name:"fig2-series"
      (Staged.stage (fun () ->
           for step = 0 to 20 do
             let omega_a = 5.0 +. (0.1 *. float_of_int step) in
             ignore (Coupled_pair.exchange_strength ~omega_a ~omega_b:6.0 ~g:0.03)
           done));
    Test.make ~name:"fig9-cell-cd-bv9"
      (Staged.stage (fun () ->
           let device = Lazy.force device9 in
           ignore
             (Exp_common.compile_and_evaluate ~algorithm:Compile.Color_dynamic device
                (Exp_common.benchmark "bv" 9))));
    Test.make ~name:"fig9-cell-u-bv9"
      (Staged.stage (fun () ->
           let device = Lazy.force device9 in
           ignore
             (Exp_common.compile_and_evaluate ~algorithm:Compile.Uniform device
                (Exp_common.benchmark "bv" 9))));
    Test.make ~name:"fig11-cell-capped"
      (Staged.stage (fun () ->
           let device = Lazy.force device9 in
           let options = { Compile.default_options with Compile.max_colors = Some 2 } in
           ignore
             (Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Color_dynamic device
                (Exp_common.benchmark "ising" 9))));
    Test.make ~name:"fig12-cell-gmon"
      (Staged.stage (fun () ->
           let device = Lazy.force device9 in
           let options = { Compile.default_options with Compile.residual_coupling = 0.1 } in
           ignore
             (Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Gmon device
                (Exp_common.benchmark "xeb" 9))));
    Test.make ~name:"fig15-column"
      (Staged.stage (fun () ->
           let h =
             Coupled_pair.hamiltonian
               { Coupled_pair.omega_a = 6.1; omega_b = 6.0; alpha_a = -0.2; alpha_b = -0.2; g = 0.03 }
           in
           ignore
             (Evolution.transition_series h ~src:1 ~dst:3
                ~times:[ 5.0; 10.0; 15.0; 20.0; 25.0; 30.0 ])));
  ]

(* Machine-readable sibling of the printed table, for tracking performance
   across commits (e.g. the sweep-grid / memoization work): one JSON object
   per benchmark with the OLS ns-per-run estimate.  The label defaults to
   "timing" and can be overridden with FASTSC_BENCH_LABEL so CI can keep
   before/after files side by side. *)
let emit_json measurements =
  let label =
    match Sys.getenv_opt "FASTSC_BENCH_LABEL" with
    | Some l when l <> "" -> l
    | _ -> "timing"
  in
  let path = Printf.sprintf "BENCH_%s.json" label in
  let benchmarks =
    List.map
      (fun (name, ns) ->
        Json.Obj [ ("name", Json.String name); ("ns_per_run", Json.Float ns) ])
      measurements
  in
  (* Cache effectiveness travels with the timings: a perf regression caused
     by a cold or thrashing memo table is visible in the same artifact. *)
  let cache_obj { Freq_alloc.hits; misses; entries; _ } =
    Json.Obj
      [ ("hits", Json.Int hits); ("misses", Json.Int misses); ("entries", Json.Int entries) ]
  in
  let pair_cache_obj { Crosstalk.hits; misses; entries } =
    Json.Obj
      [ ("hits", Json.Int hits); ("misses", Json.Int misses); ("entries", Json.Int entries) ]
  in
  let doc =
    Json.Obj
      [
        ("label", Json.String label);
        ("unit", Json.String "ns/run");
        ("jobs", Json.Int (Pool.default_jobs ()));
        ("benchmarks", Json.List benchmarks);
        ( "caches",
          Json.Obj
            [
              ("solver", cache_obj (Freq_alloc.solver_cache_stats ()));
              ("pair", pair_cache_obj (Crosstalk.pair_cache_stats ()));
              ("smt_solves_total", Json.Int (Fastsc_smt.Smt.find_max_delta_count ()));
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s (%d benchmarks)\n%!" path (List.length benchmarks)

let run () =
  Exp_common.heading "Bechamel timing suite (per-run wall clock)";
  let tests = micro_tests () @ experiment_tests () in
  let grouped = Test.make_grouped ~name:"fastsc" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Tablefmt.create [ "benchmark"; "time per run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate = match Analyze.OLS.estimates ols with Some [ ns ] -> Some ns | _ -> None in
      let cell =
        match estimate with
        | Some ns ->
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        | None -> "n/a"
      in
      rows := (name, cell, estimate) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter (fun (name, cell, _) -> Tablefmt.add_row t [ name; cell ]) rows;
  Tablefmt.print t;
  emit_json
    (List.filter_map (fun (name, _, estimate) -> Option.map (fun ns -> (name, ns)) estimate) rows)
