(* Ablations of the design choices called out in DESIGN.md: coloring
   heuristic, decomposition strategy, crosstalk distance, and the
   noise_conflict serialization threshold. *)

let benches () =
  [
    Exp_common.benchmark "qaoa" 9;
    Exp_common.benchmark "ising" 9;
    Exp_common.benchmark "xeb" 16;
  ]

let coloring () =
  Exp_common.heading "Ablation: subgraph coloring heuristic in ColorDynamic";
  let heuristics =
    [
      ("welsh-powell", Coloring.welsh_powell);
      ("dsatur", Coloring.dsatur);
      ("natural", Coloring.natural);
    ]
  in
  let t =
    Tablefmt.create
      ("benchmark" :: List.concat_map (fun (n, _) -> [ n; n ^ " colors" ]) heuristics)
  in
  let rows =
    Exp_common.grid
      (fun bench ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let circuit = bench.Exp_common.make device in
        let native = Compile.prepare Compile.default_options device circuit in
        let cells =
          List.concat_map
            (fun (_, colorer) ->
              let schedule, stats = Color_dynamic.run ~colorer device native in
              let m = Schedule.evaluate schedule in
              [
                Exp_common.log_cell m.Schedule.log10_success;
                Tablefmt.cell_int stats.Color_dynamic.max_colors_used;
              ])
            heuristics
        in
        bench.Exp_common.label :: cells)
      (benches ())
  in
  List.iter (Tablefmt.add_row t) rows;
  Tablefmt.print t

let decomposition () =
  Exp_common.heading "Ablation: decomposition strategy (paper §V-B5, Fig 8)";
  let strategies = [ Decompose.All_cz; Decompose.All_iswap; Decompose.Hybrid ] in
  let t =
    Tablefmt.create
      ("benchmark" :: List.map Decompose.strategy_to_string strategies)
  in
  let cells =
    List.concat_map
      (fun bench -> List.map (fun s -> (bench, s)) strategies)
      (benches ())
  in
  let metrics =
    Exp_common.grid
      (fun (bench, decomposition) ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let options = { Compile.default_options with Compile.decomposition } in
        let m =
          Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Color_dynamic device
            bench
        in
        Exp_common.log_cell m.Schedule.log10_success)
      cells
  in
  List.iter2
    (fun bench row -> Tablefmt.add_row t (bench.Exp_common.label :: row))
    (benches ())
    (Exp_common.rows_of ~width:(List.length strategies) metrics);
  Tablefmt.print t;
  Printf.printf "(log10 success; hybrid should match or beat the uniform strategies)\n"

let distance () =
  Exp_common.heading "Ablation: crosstalk distance d (paper §IV-C3)";
  let t =
    Tablefmt.create
      [ "benchmark"; "d=1 log10 P"; "d=2 log10 P"; "d=1 depth"; "d=2 depth" ]
  in
  let cells =
    List.concat_map (fun bench -> [ (bench, 1); (bench, 2) ]) (benches ())
  in
  let results =
    Exp_common.grid
      (fun (bench, d) ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let options = { Compile.default_options with Compile.crosstalk_distance = d } in
        let circuit = bench.Exp_common.make device in
        let schedule = Compile.run ~options Compile.Color_dynamic device circuit in
        (* evaluate both at distance 2 so the d=1 compilation is judged
           against the fuller noise model *)
        (Schedule.evaluate ~crosstalk_distance:2 schedule, Schedule.depth schedule))
      cells
  in
  List.iter2
    (fun bench row ->
      match row with
      | [ (m1, d1); (m2, d2) ] ->
        Tablefmt.add_row t
          [
            bench.Exp_common.label;
            Exp_common.log_cell m1.Schedule.log10_success;
            Exp_common.log_cell m2.Schedule.log10_success;
            Tablefmt.cell_int d1;
            Tablefmt.cell_int d2;
          ]
      | _ -> assert false)
    (benches ())
    (Exp_common.rows_of ~width:2 results);
  Tablefmt.print t;
  Printf.printf "(both compilations scored under the distance-2 noise model)\n"

let threshold () =
  Exp_common.heading "Ablation: noise_conflict serialization threshold (§V-B6)";
  let thresholds = [ 1; 2; 3; 4; 6; 8 ] in
  let t =
    Tablefmt.create
      ("benchmark" :: List.map (fun k -> Printf.sprintf "thr=%d" k) thresholds)
  in
  let cells =
    List.concat_map (fun bench -> List.map (fun k -> (bench, k)) thresholds) (benches ())
  in
  let metrics =
    Exp_common.grid
      (fun (bench, conflict_threshold) ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let options = { Compile.default_options with Compile.conflict_threshold } in
        let m =
          Exp_common.compile_and_evaluate ~options ~algorithm:Compile.Color_dynamic device
            bench
        in
        Exp_common.log_cell m.Schedule.log10_success)
      cells
  in
  List.iter2
    (fun bench row -> Tablefmt.add_row t (bench.Exp_common.label :: row))
    (benches ())
    (Exp_common.rows_of ~width:(List.length thresholds) metrics);
  Tablefmt.print t

let optimize () =
  Exp_common.heading "Ablation: peephole circuit optimization before scheduling";
  let t =
    Tablefmt.create
      [ "benchmark"; "gates raw"; "gates optimized"; "raw log10 P"; "optimized log10 P" ]
  in
  let cells =
    List.concat_map (fun bench -> [ (bench, false); (bench, true) ]) (benches ())
  in
  let results =
    Exp_common.grid
      (fun (bench, optimize) ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let options = { Compile.default_options with Compile.optimize } in
        let circuit = bench.Exp_common.make device in
        let native = Compile.prepare options device circuit in
        let schedule = Compile.schedule_native options Compile.Color_dynamic device native in
        (Circuit.length native, (Schedule.evaluate schedule).Schedule.log10_success))
      cells
  in
  List.iter2
    (fun bench row ->
      match row with
      | [ (raw_gates, raw_p); (opt_gates, opt_p) ] ->
        Tablefmt.add_row t
          [
            bench.Exp_common.label;
            Tablefmt.cell_int raw_gates;
            Tablefmt.cell_int opt_gates;
            Exp_common.log_cell raw_p;
            Exp_common.log_cell opt_p;
          ]
      | _ -> assert false)
    (benches ())
    (Exp_common.rows_of ~width:2 results);
  Tablefmt.print t;
  Printf.printf "(the optimizer is off by default to match the paper's pipeline)\n"

let router () =
  Exp_common.heading "Ablation: SWAP router (greedy shortest-path vs SABRE-style lookahead)";
  let t =
    Tablefmt.create
      [
        "benchmark"; "greedy 2q"; "lookahead 2q"; "greedy log10 P"; "lookahead log10 P";
      ]
  in
  let router_benches = Exp_common.benchmark "qaoa" 16 :: benches () in
  let cells =
    List.concat_map (fun bench -> [ (bench, "greedy"); (bench, "lookahead") ]) router_benches
  in
  let results =
    Exp_common.grid
      (fun (bench, router) ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let options = { Compile.default_options with Compile.router } in
        let circuit = bench.Exp_common.make device in
        let native = Compile.prepare options device circuit in
        let schedule = Compile.schedule_native options Compile.Color_dynamic device native in
        (Circuit.n_two_qubit native, (Schedule.evaluate schedule).Schedule.log10_success))
      cells
  in
  List.iter2
    (fun bench row ->
      match row with
      | [ (g2q, gp); (l2q, lp) ] ->
        Tablefmt.add_row t
          [
            bench.Exp_common.label;
            Tablefmt.cell_int g2q;
            Tablefmt.cell_int l2q;
            Exp_common.log_cell gp;
            Exp_common.log_cell lp;
          ]
      | _ -> assert false)
    router_benches
    (Exp_common.rows_of ~width:2 results);
  Tablefmt.print t;
  Printf.printf "(fewer routed two-qubit gates mean fewer error terms and less time)\n"

let all () =
  coloring ();
  decomposition ();
  distance ();
  threshold ();
  optimize ();
  router ()
