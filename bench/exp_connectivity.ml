(* Fig 13: general device connectivity — express cubes of increasing density.
   Top: colors used and compilation time of ColorDynamic; bottom: success of
   Baseline U vs ColorDynamic.  Prints the geomean improvement headline
   (paper: 3.97x). *)

let topologies n =
  (* ordered sparse -> dense, as on the paper's x-axis *)
  let side = int_of_float (sqrt (float_of_int n)) in
  [
    Topology.path n;
    Topology.express_1d n 8;
    Topology.express_1d n 4;
    Topology.express_1d n 2;
    Topology.grid side side;
    Topology.express_2d side side 3;
    Topology.express_2d side side 2;
  ]

let time_of f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let fig13 () =
  Exp_common.heading "Fig 13: general device connectivity (express cubes)";
  let n = 16 in
  let benches = [ "bv"; "qaoa"; "ising"; "qgan"; "xeb" ] in
  let t =
    Tablefmt.create
      [
        "topology"; "couplings"; "benchmark"; "colors"; "compile (s)";
        "U log10"; "CD log10";
      ]
  in
  let ratios = ref [] in
  let shallow_ratios = ref [] in
  (* one pool cell per (topology, benchmark); ratios and rows are accumulated
     serially afterwards, in grid order, so the output is order-stable *)
  let cells =
    List.concat_map
      (fun topology -> List.mapi (fun i name -> (topology, i, name)) benches)
      (topologies n)
  in
  let results =
    Exp_common.grid
      (fun (topology, i, name) ->
        let device = Exp_common.device_of_topology topology in
        let bench = Exp_common.benchmark name n in
        let circuit = bench.Exp_common.make device in
        let ctx, elapsed =
          time_of (fun () ->
              Exp_common.compile_context ~algorithm:Compile.Color_dynamic device circuit)
        in
        let cd = Schedule.evaluate (Pass.Context.schedule_exn ctx) in
        let colors = Pass.Context.stat_int ctx "max_colors_used" in
        let u = Exp_common.compile_and_evaluate ~algorithm:Compile.Uniform device bench in
        (topology, i, bench, colors, elapsed, u, cd))
      cells
  in
  List.iter
    (fun (topology, i, bench, colors, elapsed, u, cd) ->
      if u.Schedule.success > 0.0 && cd.Schedule.success > 0.0 then begin
        let ratio = cd.Schedule.success /. u.Schedule.success in
        ratios := ratio :: !ratios;
        (* the paper's statistics exclude programs below 1e-4 success *)
        if cd.Schedule.success >= 1e-4 then shallow_ratios := ratio :: !shallow_ratios
      end;
      Tablefmt.add_row t
        [
          (if i = 0 then topology.Topology.name else "");
          (if i = 0 then Tablefmt.cell_int (Graph.n_edges topology.Topology.graph) else "");
          bench.Exp_common.label;
          Tablefmt.cell_int colors;
          Tablefmt.cell_float ~digits:3 elapsed;
          Exp_common.log_cell u.Schedule.log10_success;
          Exp_common.log_cell cd.Schedule.log10_success;
        ];
      if i = List.length benches - 1 then Tablefmt.add_separator t)
    results;
  Tablefmt.print t;
  Printf.printf
    "ColorDynamic vs Baseline U across all connectivities: geomean improvement %.2fx\n\
     over every row, %.2fx over rows above the paper's 1e-4 success cutoff\n\
     (paper: 3.97x; our exponential-decoherence model punishes the serialized\n\
     baseline harder on the deepest circuits — see EXPERIMENTS.md)\n"
    (Stats.geomean !ratios)
    (if !shallow_ratios = [] then nan else Stats.geomean !shallow_ratios)

let scalability () =
  Exp_common.heading "Scalability: ColorDynamic compilation time vs system size (§VII-C)";
  let t = Tablefmt.create [ "qubits"; "xeb gates"; "compile time (s)"; "max colors" ] in
  let rows =
    Exp_common.grid
      (fun side ->
        let n = side * side in
        let device = Exp_common.mesh_device n in
        let circuit = Exp_common.xeb_for_device device in
        let ctx, elapsed =
          time_of (fun () ->
              Exp_common.compile_context ~algorithm:Compile.Color_dynamic device circuit)
        in
        [
          Tablefmt.cell_int n;
          Tablefmt.cell_int (Circuit.length circuit);
          Tablefmt.cell_float ~digits:3 elapsed;
          Tablefmt.cell_int (Pass.Context.stat_int ctx "max_colors_used");
        ])
      [ 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  List.iter (Tablefmt.add_row t) rows;
  Tablefmt.print t;
  Printf.printf "(paper: < 30 s at 81 qubits on XEB; shape to check is the gentle growth)\n"
