(* Fig 6: the paper's worked example — a toy four-qubit program on a 2x2
   mesh whose two parallel CNOTs collide under naive compilation; the
   optimized compilation separates them in frequency.  We print both
   schedules with their frequency assignments and the per-step error terms,
   making the textual analogue of Fig 6 (a)-(c). *)

let toy_program () =
  (* H and CNOT structure in the spirit of the figure: two two-qubit gates
     able to run in parallel on adjacent couplings *)
  Circuit.of_gates 4
    [
      (Gate.H, [ 0 ]);
      (Gate.H, [ 2 ]);
      (Gate.Cnot, [ 0; 1 ]);
      (Gate.Cnot, [ 2; 3 ]);
      (Gate.H, [ 1 ]);
      (Gate.Cnot, [ 1; 3 ]);
    ]

let show device label schedule =
  Printf.printf "\n--- %s ---\n" label;
  List.iteri
    (fun i step ->
      let gate_text =
        String.concat "  "
          (List.map
             (fun app ->
               Printf.sprintf "%s(%s)" (Gate.name app.Gate.gate)
                 (String.concat ","
                    (List.map string_of_int (Array.to_list app.Gate.qubits))))
             step.Schedule.gates)
      in
      let freq_text =
        String.concat " "
          (List.map
             (fun (a, b) -> Printf.sprintf "(%d,%d)@%.3fGHz" a b step.Schedule.freqs.(a))
             step.Schedule.interacting)
      in
      let gate_err, xtalk_err = Schedule.step_errors schedule step in
      Printf.printf "step %d (%4.0f ns): %-40s %s [gate %.1e, crosstalk %.1e]\n" i
        step.Schedule.duration gate_text freq_text gate_err xtalk_err)
    schedule.Schedule.steps;
  let m = Schedule.evaluate schedule in
  Printf.printf "=> log10 success %.2f (crosstalk error %.2e)\n" m.Schedule.log10_success
    m.Schedule.crosstalk_error;
  ignore device

let fig6 () =
  Exp_common.heading "Fig 6: the worked example — spectral vs temporal separation";
  let device = Exp_common.mesh_device 4 in
  let circuit = toy_program () in
  Format.printf "%a@.@." Device.pp_summary device;
  print_endline "the toy program (logical):";
  print_endline (Draw.circuit circuit);
  (* both compilations are independent cells; compile on the pool, print after *)
  let schedules =
    Exp_common.grid
      (fun algorithm -> Compile.run algorithm device circuit)
      [ Compile.Naive; Compile.Color_dynamic ]
  in
  List.iter2 (show device)
    [
      "naive compilation (both CNOTs share one frequency)";
      "ColorDynamic (parallel CNOTs get separated frequencies)";
    ]
    schedules;
  print_endline
    "\n(the highlighted collision of the paper's Fig 6b is the naive step whose\n\
     crosstalk term saturates; Fig 6c's fix is visible as the distinct\n\
     interaction frequencies in the ColorDynamic schedule)"
