(* Shared infrastructure for the experiment drivers: devices, the benchmark
   suite of Table II, and compile-and-evaluate helpers. *)

let device_seed = 2020 (* MICRO 2020 *)

let circuit_seed = 7

let mesh_device ?(seed = device_seed) n_qubits =
  Device.create ~seed (Topology.square_grid n_qubits)

let device_of_topology ?(seed = device_seed) topology = Device.create ~seed topology

(* XEB needs the device's coupler activation classes. *)
let xeb_for_device ?(cycles = 5) ?(seed = circuit_seed) device =
  let classes = Baseline_gmon.edge_classes device in
  Xeb.circuit (Rng.create seed) ~graph:(Device.graph device) ~classes ~cycles ()

type benchmark = { label : string; n : int; make : Device.t -> Circuit.t }

let benchmark ?(seed = circuit_seed) name n =
  match name with
  | "bv" -> { label = Printf.sprintf "bv(%d)" n; n; make = (fun _ -> Bv.circuit ~n ()) }
  | "qaoa" ->
    {
      label = Printf.sprintf "qaoa(%d)" n;
      n;
      make = (fun _ -> Qaoa.circuit (Rng.create seed) ~n ());
    }
  | "ising" ->
    { label = Printf.sprintf "ising(%d)" n; n; make = (fun _ -> Ising.circuit ~n ()) }
  | "qgan" ->
    {
      label = Printf.sprintf "qgan(%d)" n;
      n;
      make = (fun _ -> Qgan.circuit (Rng.create seed) ~n ());
    }
  | "xeb" ->
    {
      label = Printf.sprintf "xeb(%d,5)" n;
      n;
      make = (fun device -> xeb_for_device ~seed device);
    }
  | "grover" ->
    {
      label = Printf.sprintf "grover(%d,%d)" n (Grover.data_qubits ~n);
      n;
      make = (fun _ -> Grover.circuit ~n ());
    }
  | "vqe" ->
    {
      label = Printf.sprintf "vqe(%d)" n;
      n;
      make = (fun _ -> Vqe.circuit (Rng.create seed) ~n ());
    }
  | other -> invalid_arg ("unknown benchmark: " ^ other)

(* The paper's suite (§VI-B): n = 4, 9, 16; qaoa(16)/ising(16) are kept here
   even though the paper omits their Fig 9 bars (success < 1e-4) — we print
   them and mark the cutoff in the driver. *)
let suite_sizes = [ 4; 9; 16 ]

let suite_names = [ "bv"; "qaoa"; "ising"; "qgan"; "xeb"; "grover"; "vqe" ]

let full_suite () =
  List.concat_map (fun name -> List.map (fun n -> benchmark name n) suite_sizes) suite_names

(* All compilation goes through the pass-manager pipeline; drivers that need
   scheduler statistics or the instrumentation trail read them off the
   returned context instead of the old ColorDynamic-only stats path. *)
let compile_context ?(options = Compile.default_options) ~algorithm device circuit =
  Pass.execute ~options ~through:`Schedule
    ~algorithm:(Compile.algorithm_to_string algorithm) device circuit

let compile_and_evaluate ?(options = Compile.default_options) ~algorithm device bench =
  let circuit = bench.make device in
  let ctx =
    Pass.execute ~options ~algorithm:(Compile.algorithm_to_string algorithm) device circuit
  in
  (match Schedule.check (Pass.Context.schedule_exn ctx) with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "invalid schedule from %s on %s: %s"
         (Compile.algorithm_to_string algorithm) bench.label msg));
  Pass.Context.metrics_exn ctx

(* The multicore sweep engine.  Every driver follows the same shape: describe
   the figure/table as a grid of independent cells, evaluate the cells across
   the domain pool, then print serially from the in-order result list.  The
   printing phase never runs concurrently with cell evaluation, and results
   come back in input order, so stdout is byte-identical at any job count
   (the determinism contract in docs/MANUAL.md §9). *)

let grid ?jobs f cells = Pool.map ?jobs f cells

let grid_i ?jobs f cells = Pool.mapi ?jobs f cells

(* Slice a flat in-order cell list back into rows of [width] (the inverse of
   fanning a (row x column) table out one cell at a time). *)
let rows_of ~width cells =
  if width < 1 then invalid_arg "Exp_common.rows_of: width must be >= 1";
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> invalid_arg "Exp_common.rows_of: ragged cell list"
    | cell :: rest -> take (k - 1) (cell :: acc) rest
  in
  let rec go = function
    | [] -> []
    | cells ->
      let row, rest = take width [] cells in
      row :: go rest
  in
  go cells

(* The common (benchmark x algorithm) fan-out of Figs 9/10: one pool cell per
   pair — rather than per benchmark — so the grid saturates the pool even
   when one column (e.g. Baseline U on the deep 16-qubit circuits) dominates.
   Each cell re-fabricates its device from the cell's own seed, which is what
   makes cells independent: nothing is shared, and the fabrication RNG is
   deterministic per seed. *)
let compile_and_evaluate_grid ?jobs ?options ?(device_of = fun bench -> mesh_device bench.n)
    ~algorithms benches =
  let cells =
    List.concat_map (fun bench -> List.map (fun algorithm -> (bench, algorithm)) algorithms) benches
  in
  let metrics =
    grid ?jobs
      (fun (bench, algorithm) ->
        compile_and_evaluate ?options ~algorithm (device_of bench) bench)
      cells
  in
  (* regroup the flat in-order cell list into per-benchmark rows *)
  let rec rows benches metrics =
    match benches with
    | [] -> []
    | bench :: rest ->
      let this, remaining =
        List.fold_left
          (fun (acc, ms) algorithm ->
            match ms with
            | m :: tl -> ((algorithm, m) :: acc, tl)
            | [] -> invalid_arg "compile_and_evaluate_grid: cell count mismatch")
          ([], metrics) algorithms
      in
      (bench, List.rev this) :: rows rest remaining
  in
  rows benches metrics

let log_cell value =
  if value = neg_infinity then "-inf" else Tablefmt.cell_float ~digits:2 value

(* The parallelism note goes to stderr: stdout is the determinism surface
   (byte-identical at any job count), the chosen job count is not. *)
let heading title =
  let rule = String.make (String.length title) '=' in
  Printf.eprintf "[%s: jobs=%d]\n%!" title (Pool.default_jobs ());
  Printf.printf "\n%s\n%s\n" title rule
