(* Extensions beyond the paper's evaluation: the GHZ/QFT workloads, the
   GmonDynamic algorithm (paper §VIII future work) across the whole suite,
   and real-machine lattices (IBM heavy-hex, Rigetti octagonal). *)

let algorithms = Compile.extended_algorithms

let column_labels = List.map Compile.algorithm_to_string algorithms

let extra_benchmarks () =
  Exp_common.heading "Extension: GHZ and QFT workloads (all algorithms, log10 success)";
  let cases =
    [
      ("ghz(9)", 9, fun () -> Ghz.circuit ~n:9 ());
      ("ghz-tree(16)", 16, fun () -> Ghz.circuit ~fanout:true ~n:16 ());
      ("qft(6)", 9, fun () -> Qft.circuit ~n:6 ());
      ("qft(9)", 9, fun () -> Qft.circuit ~n:9 ());
      ("aqft3(9)", 9, fun () -> Qft.circuit ~approximation:3 ~n:9 ());
    ]
  in
  let t = Tablefmt.create ("benchmark" :: column_labels) in
  let cells =
    List.concat_map
      (fun (label, device_size, make) ->
        List.map (fun algorithm -> (label, device_size, make, algorithm)) algorithms)
      cases
  in
  let metrics =
    Exp_common.grid
      (fun (_, device_size, make, algorithm) ->
        let device = Exp_common.mesh_device device_size in
        let schedule = Compile.run algorithm device (make ()) in
        Exp_common.log_cell (Schedule.evaluate schedule).Schedule.log10_success)
      cells
  in
  List.iter2
    (fun (label, _, _) row -> Tablefmt.add_row t (label :: row))
    cases
    (Exp_common.rows_of ~width:(List.length algorithms) metrics);
  Tablefmt.print t;
  Printf.printf
    "(aqft3 = approximate QFT truncated at pi/8 rotations — the standard\n\
     NISQ-friendly variant; gmon-dynamic is the paper's §VIII extension)\n"

let machine_lattices () =
  Exp_common.heading "Extension: real-machine lattices (IBM heavy-hex, Rigetti octagonal)";
  let lattices =
    [ Topology.grid 4 4; Topology.heavy_hex 1 2; Topology.octagonal 1 2 ]
  in
  let t =
    Tablefmt.create
      [
        "lattice"; "qubits"; "couplings"; "benchmark"; "U log10"; "CD log10"; "CD colors";
      ]
  in
  let kinds = [ "ghz"; "ising"; "xeb" ] in
  let cells =
    List.concat_map
      (fun topology -> List.mapi (fun i kind -> (topology, i, kind)) kinds)
      lattices
  in
  let results =
    Exp_common.grid
      (fun (topology, i, kind) ->
        let device = Exp_common.device_of_topology topology in
        let n = Device.n_qubits device in
        let circuit =
          match kind with
          | "ghz" -> Ghz.circuit ~fanout:true ~n ()
          | "ising" -> Ising.circuit ~n ()
          | _ -> Exp_common.xeb_for_device device
        in
        let u = Schedule.evaluate (Compile.run Compile.Uniform device circuit) in
        let ctx = Exp_common.compile_context ~algorithm:Compile.Color_dynamic device circuit in
        let cd = Schedule.evaluate (Pass.Context.schedule_exn ctx) in
        let colors = Pass.Context.stat_int ctx "max_colors_used" in
        (topology, i, kind, n, Graph.n_edges (Device.graph device), u, cd, colors))
      cells
  in
  List.iter
    (fun (topology, i, kind, n, couplings, u, cd, colors) ->
      Tablefmt.add_row t
        [
          (if i = 0 then topology.Topology.name else "");
          (if i = 0 then Tablefmt.cell_int n else "");
          (if i = 0 then Tablefmt.cell_int couplings else "");
          kind;
          Exp_common.log_cell u.Schedule.log10_success;
          Exp_common.log_cell cd.Schedule.log10_success;
          Tablefmt.cell_int colors;
        ];
      if i = List.length kinds - 1 then Tablefmt.add_separator t)
    results;
  Tablefmt.print t;
  Printf.printf
    "(heavy-hex and octagonal lattices are sparser than the mesh: fewer\n\
     crosstalk channels, so fewer colors suffice — consistent with the\n\
     paper's locality argument, and with why IBM builds heavy-hex)\n"

let pulse_lowering () =
  Exp_common.heading "Extension: pulse-level lowering statistics";
  let t =
    Tablefmt.create
      [
        "benchmark"; "algorithm"; "waveform segs (max/qubit)"; "max slew (Phi0/ns)";
        "checked";
      ]
  in
  let device = Exp_common.mesh_device 9 in
  let cells =
    List.concat_map
      (fun (label, circuit) ->
        List.map
          (fun algorithm -> (label, circuit, algorithm))
          [ Compile.Uniform; Compile.Color_dynamic ])
      [
        ("ising(9)", Ising.circuit ~n:9 ());
        ("xeb(9,5)", Exp_common.xeb_for_device (Exp_common.mesh_device 9));
      ]
  in
  let rows =
    Exp_common.grid
      (fun (label, circuit, algorithm) ->
        let schedule = Compile.run algorithm device circuit in
        let waveforms = Control.lower schedule in
        let max_segments =
          Array.fold_left (fun acc w -> max acc (List.length w)) 0 waveforms
        in
        let max_slew =
          Array.fold_left (fun acc w -> Float.max acc (Control.max_slew_rate w)) 0.0 waveforms
        in
        let ok =
          match Control.check schedule waveforms with Ok () -> "ok" | Error e -> e
        in
        [
          label;
          Compile.algorithm_to_string algorithm;
          Tablefmt.cell_int max_segments;
          Tablefmt.cell_float ~digits:4 max_slew;
          ok;
        ])
      cells
  in
  List.iter (Tablefmt.add_row t) rows;
  Tablefmt.print t;
  Printf.printf
    "(every schedule lowers to a continuous, bounded-flux waveform per qubit —\n\
     the control-stack artifact the paper's flow diagram ends at)\n"

let snake_comparison () =
  Exp_common.heading
    "Extension: coloring+SMT (ColorDynamic) vs direct annealing (Snake-style [31])";
  let t =
    Tablefmt.create
      [
        "benchmark"; "CD log10 P"; "anneal log10 P"; "CD compile (s)"; "anneal compile (s)";
      ]
  in
  (* one cell per benchmark: the two timed compilations stay serial within a
     cell so their wall-clock comparison is not skewed by pool contention *)
  let rows =
    Exp_common.grid
      (fun bench ->
        let device = Exp_common.mesh_device bench.Exp_common.n in
        let circuit = bench.Exp_common.make device in
        let native = Compile.prepare Compile.default_options device circuit in
        let timed algorithm =
          let start = Unix.gettimeofday () in
          let schedule =
            Compile.schedule_native Compile.default_options algorithm device native
          in
          let elapsed = Unix.gettimeofday () -. start in
          ((Schedule.evaluate schedule).Schedule.log10_success, elapsed)
        in
        let cd_p, cd_t = timed Compile.Color_dynamic in
        let an_p, an_t = timed Compile.Anneal_dynamic in
        [
          bench.Exp_common.label;
          Exp_common.log_cell cd_p;
          Exp_common.log_cell an_p;
          Tablefmt.cell_float ~digits:4 cd_t;
          Tablefmt.cell_float ~digits:4 an_t;
        ])
      [
        Exp_common.benchmark "bv" 9;
        Exp_common.benchmark "ising" 9;
        Exp_common.benchmark "xeb" 9;
        Exp_common.benchmark "xeb" 16;
      ]
  in
  List.iter (Tablefmt.add_row t) rows;
  Tablefmt.print t;
  Printf.printf
    "(the paper's §III claim, reproduced: the coloring decomposition matches the\n\
     direct optimizer's quality at a fraction of the compilation cost)\n"

let all () =
  extra_benchmarks ();
  machine_lattices ();
  pulse_lowering ();
  snake_comparison ()
