(* Fig 7: structure of the crosstalk graph — the paper's claim that 8 colors
   are necessary and sufficient for 2-D mesh crosstalk graphs, checked with
   the exact chromatic-number search, plus the greedy coloring's gap. *)

let fig7 () =
  Exp_common.heading "Fig 7: crosstalk-graph coloring (greedy vs exact chromatic number)";
  let topologies =
    [
      Topology.grid 2 2; Topology.grid 3 3; Topology.grid 4 4; Topology.grid 5 5;
      Topology.path 16; Topology.express_1d 16 4; Topology.heavy_hex 1 2;
      Topology.octagonal 1 2; Topology.ring 8;
    ]
  in
  let t =
    Tablefmt.create
      [ "topology"; "couplings"; "Gx vertices"; "Gx edges"; "welsh-powell"; "exact chi" ]
  in
  (* the exact chromatic-number searches are the slow cells; one per topology *)
  let rows =
    Exp_common.grid
      (fun topology ->
        let g = topology.Topology.graph in
        let xg = Crosstalk_graph.build g in
        let greedy = Coloring.n_colors (Coloring.welsh_powell xg.Crosstalk_graph.graph) in
        let exact =
          try
            Tablefmt.cell_int
              (Coloring.chromatic_number ~budget:5_000_000 xg.Crosstalk_graph.graph)
          with Failure _ -> "budget"
        in
        [
          topology.Topology.name;
          Tablefmt.cell_int (Graph.n_edges g);
          Tablefmt.cell_int (Graph.n_vertices xg.Crosstalk_graph.graph);
          Tablefmt.cell_int (Graph.n_edges xg.Crosstalk_graph.graph);
          Tablefmt.cell_int greedy;
          exact;
        ])
      topologies
  in
  List.iter (Tablefmt.add_row t) rows;
  Tablefmt.print t;
  Printf.printf
    "(paper Fig 7: 8 colors are required and sufficient for N x N meshes — the\n\
     exact column confirms chi = 8 from 3x3 up; the greedy heuristic's small\n\
     gap on dense graphs is why the paper can afford polynomial coloring)\n"
