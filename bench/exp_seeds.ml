(* Robustness across fabrication: the paper samples maximum frequencies from
   N(omega, 0.1) to model realistic variation (§VI-C); this sweep re-runs the
   headline comparison over several fabricated devices and reports the spread
   of ColorDynamic's improvement over Baseline U. *)

let seeds = [ 2020; 7; 42; 123; 999 ]

let robustness () =
  Exp_common.heading
    "Fabrication robustness: CD-vs-U improvement across device seeds (log10)";
  let benches =
    [
      Exp_common.benchmark "bv" 16;
      Exp_common.benchmark "ising" 16;
      Exp_common.benchmark "qgan" 16;
      Exp_common.benchmark "xeb" 16;
    ]
  in
  let t =
    Tablefmt.create
      ("benchmark"
      :: (List.map (fun s -> "seed " ^ string_of_int s) seeds @ [ "mean"; "stddev" ]))
  in
  let all_ratios = ref [] in
  (* one pool cell per (benchmark, fabrication seed): each cell fabricates
     its own device from its seed, so cells share nothing *)
  let cells = List.concat_map (fun bench -> List.map (fun s -> (bench, s)) seeds) benches in
  let gaps_flat =
    Exp_common.grid
      (fun (bench, seed) ->
        let device = Exp_common.mesh_device ~seed bench.Exp_common.n in
        let u = Exp_common.compile_and_evaluate ~algorithm:Compile.Uniform device bench in
        let cd =
          Exp_common.compile_and_evaluate ~algorithm:Compile.Color_dynamic device bench
        in
        cd.Schedule.log10_success -. u.Schedule.log10_success)
      cells
  in
  List.iter2
    (fun bench gaps ->
      all_ratios := gaps @ !all_ratios;
      Tablefmt.add_row t
        (bench.Exp_common.label
        :: (List.map (Tablefmt.cell_float ~digits:2) gaps
           @ [
               Tablefmt.cell_float ~digits:2 (Stats.mean gaps);
               Tablefmt.cell_float ~digits:2 (Stats.stddev gaps);
             ])))
    benches
    (Exp_common.rows_of ~width:(List.length seeds) gaps_flat);
  Tablefmt.print t;
  Printf.printf
    "(each cell is log10(P_CD / P_U) on a freshly fabricated device; positive\n\
     everywhere means the paper's conclusion is not an artifact of one lucky\n\
     fabrication — overall mean %.2f decades, min %.2f)\n"
    (Stats.mean !all_ratios)
    (fst (Stats.min_max !all_ratios))
