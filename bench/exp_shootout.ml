(* Cross-compiler shootout: every registered scheduler — the paper's five
   Table I algorithms, the dynamic extensions, and the rival zoo
   (murali-delay, cqc-synergy) — head-to-head on the table2 workload
   surface across a widened device zoo (mesh, ring, express, heavy-hex,
   octagonal, honeycomb), with per-qubit calibration noise charged through
   [Schedule.evaluate ~coherence] ([Calibration.coherence]: flux-noise
   dephasing at each qubit's parking point shortens its T2).

   One pool cell per (topology, workload, scheduler): each cell fabricates
   its own device and calibration from the cell's seed, so cells are
   independent and stdout/JSON are byte-identical at any job count.

   Emits BENCH_shootout.json.  Env knobs (the `make bench-shootout` smoke
   run shrinks them):
     FASTSC_SHOOTOUT_SIZES       comma-separated workload sizes (default "4,9,16")
     FASTSC_SHOOTOUT_BENCHES     comma-separated benchmark names
                                 (default "bv,qaoa,ising,qgan,xeb")
     FASTSC_SHOOTOUT_TOPOLOGIES  comma-separated topology names (default
                                 "mesh,ring,express,heavy-hex,octagonal";
                                 "honeycomb" also valid)
     FASTSC_SHOOTOUT_SCRUB       when set, zero wall-clock fields and the
                                 jobs stamp so JSON/stdout from different
                                 job counts compare byte-for-byte *)

let valid_topologies = [ "mesh"; "ring"; "express"; "heavy-hex"; "octagonal"; "honeycomb" ]

(* Tile dimensions tried in order for the cell-based lattices: first entry
   whose instance holds >= n qubits wins (the last is the fallback cap). *)
let tile_steps = [ (1, 1); (1, 2); (2, 2); (2, 3); (3, 3); (3, 4); (4, 4) ]

let grow make n =
  let rec go = function
    | [ (r, c) ] -> make r c
    | (r, c) :: rest ->
      let t = make r c in
      if Graph.n_vertices t.Topology.graph >= n then t else go rest
    | [] -> assert false
  in
  go tile_steps

let sized_topology name n =
  match name with
  | "mesh" -> Topology.square_grid n
  | "ring" -> Topology.ring (max 3 n)
  | "express" ->
    let s = max 2 (int_of_float (Float.ceil (sqrt (float_of_int n)))) in
    Topology.express_2d s s 2
  | "heavy-hex" -> grow Topology.heavy_hex n
  | "octagonal" -> grow Topology.octagonal n
  | "honeycomb" -> grow Topology.honeycomb n
  | other ->
    Printf.eprintf "bench shootout: unknown topology %S (valid: %s)\n%!" other
      (String.concat " " valid_topologies);
    exit 2

let env_list name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some spec -> List.map String.trim (String.split_on_char ',' spec)

let env_sizes () =
  List.map
    (fun s ->
      match int_of_string_opt s with
      | Some v when v >= 2 -> v
      | _ ->
        Printf.eprintf "bench shootout: FASTSC_SHOOTOUT_SIZES needs integers >= 2, got %S\n%!" s;
        exit 2)
    (env_list "FASTSC_SHOOTOUT_SIZES" [ "4"; "9"; "16" ])

let scrubbed () = Sys.getenv_opt "FASTSC_SHOOTOUT_SCRUB" <> None

type cell = {
  scheduler : string;
  log10 : float;
  success : float;
  depth : int;
  total_ns : float;
  compile_ms : float;
}

let eval_cell ~scrub (topo_name, bench, scheduler) =
  let topo = sized_topology topo_name bench.Exp_common.n in
  let device = Device.create ~seed:Exp_common.device_seed topo in
  let cal = Calibration.generate device in
  let circuit = bench.Exp_common.make device in
  let t0 = Unix.gettimeofday () in
  let ctx = Pass.execute ~through:`Schedule ~algorithm:scheduler device circuit in
  let dt = Unix.gettimeofday () -. t0 in
  let sched = Pass.Context.schedule_exn ctx in
  (match Schedule.check sched with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "shootout: invalid schedule from %s on %s/%s: %s" scheduler topo_name
         bench.Exp_common.label msg));
  let m = Schedule.evaluate ~coherence:(Calibration.coherence cal) sched in
  {
    scheduler;
    log10 = m.Schedule.log10_success;
    success = m.Schedule.success;
    depth = m.Schedule.depth;
    total_ns = m.Schedule.total_time;
    compile_ms = (if scrub then 0.0 else dt *. 1000.0);
  }

let find_cell cells name = List.find (fun c -> c.scheduler = name) cells

(* The acceptance headline: workloads where the paper's frequency-aware
   scheduler beats Murali-style delays, which beat the naive baseline. *)
let headline_of_mesh mesh_rows =
  let ordered =
    List.filter_map
      (fun (bench, cells) ->
        let cd = find_cell cells "color-dynamic" in
        let md = find_cell cells "murali-delay" in
        let nv = find_cell cells "baseline-n" in
        if cd.success > md.success && md.success > nv.success then
          Some (bench.Exp_common.label, cd.log10, md.log10, nv.log10)
        else None)
      mesh_rows
  in
  (ordered, List.length mesh_rows)

let run () =
  Exp_common.heading "Shootout: all registered schedulers x topology zoo x table2 workloads";
  let scrub = scrubbed () in
  let sizes = env_sizes () in
  let bench_names = env_list "FASTSC_SHOOTOUT_BENCHES" Exp_common.suite_names in
  let topo_names =
    env_list "FASTSC_SHOOTOUT_TOPOLOGIES"
      [ "mesh"; "ring"; "express"; "heavy-hex"; "octagonal" ]
  in
  List.iter (fun t -> if not (List.mem t valid_topologies) then ignore (sized_topology t 4))
    topo_names;
  let schedulers = List.map Compile.algorithm_to_string Compile.extended_algorithms in
  let workloads =
    List.concat_map
      (fun name -> List.map (fun n -> Exp_common.benchmark name n) sizes)
      bench_names
  in
  let cells =
    List.concat_map
      (fun topo ->
        List.concat_map
          (fun bench -> List.map (fun s -> (topo, bench, s)) schedulers)
          workloads)
      topo_names
  in
  let results = Exp_common.grid (eval_cell ~scrub) cells in
  (* regroup the flat in-order cell list: topology -> workload -> scheduler *)
  let per_scheduler = List.length schedulers in
  let per_topology = List.length workloads * per_scheduler in
  let rows_by_topology =
    List.mapi
      (fun i topo ->
        let mine =
          List.filteri
            (fun j _ -> j >= i * per_topology && j < (i + 1) * per_topology)
            results
        in
        let rows =
          List.mapi
            (fun k bench ->
              ( bench,
                List.filteri
                  (fun j _ -> j >= k * per_scheduler && j < (k + 1) * per_scheduler)
                  mine ))
            workloads
        in
        (topo, rows))
      topo_names
  in
  (* one log10-success table per topology: rows = workloads, cols = schedulers *)
  List.iter
    (fun (topo, rows) ->
      Printf.printf "\n[%s] log10 success (calibration-backed)\n" topo;
      let t = Tablefmt.create ("benchmark" :: schedulers) in
      List.iter
        (fun (bench, cells) ->
          Tablefmt.add_row t
            (bench.Exp_common.label :: List.map (fun c -> Exp_common.log_cell c.log10) cells))
        rows;
      Tablefmt.print t)
    rows_by_topology;
  (* compile time and depth, summed over the whole surface per scheduler *)
  Printf.printf "\n[totals across %d cells]\n" (List.length cells);
  let t = Tablefmt.create [ "scheduler"; "compile ms"; "total depth" ] in
  List.iter
    (fun s ->
      let mine = List.filter (fun c -> c.scheduler = s) results in
      Tablefmt.add_row t
        [
          s;
          Tablefmt.cell_float ~digits:1
            (List.fold_left (fun acc c -> acc +. c.compile_ms) 0.0 mine);
          Tablefmt.cell_int (List.fold_left (fun acc c -> acc + c.depth) 0 mine);
        ])
    schedulers;
  Tablefmt.print t;
  (* the headline ordering on the mesh *)
  let headline =
    match List.assoc_opt "mesh" rows_by_topology with
    | None -> None
    | Some mesh_rows ->
      let ordered, total = headline_of_mesh mesh_rows in
      (match ordered with
      | (label, cd, md, nv) :: _ ->
        Printf.printf
          "\nheadline: mesh %s: color-dynamic %.2f > murali-delay %.2f > baseline-n %.2f \
           (%d/%d mesh workloads satisfy the ordering)\n"
          label cd md nv (List.length ordered) total
      | [] -> Printf.printf "\nheadline: ORDERING NOT REPRODUCED on any mesh workload\n");
      Some (List.length ordered, total)
  in
  let doc =
    Json.Obj
      [
        ("label", Json.String "shootout");
        ("jobs", Json.Int (if scrub then 0 else Pool.default_jobs ()));
        ("schedulers", Json.List (List.map (fun s -> Json.String s) schedulers));
        ( "topologies",
          Json.List
            (List.map
               (fun (topo, rows) ->
                 Json.Obj
                   [
                     ("topology", Json.String topo);
                     ( "workloads",
                       Json.List
                         (List.map
                            (fun (bench, cells) ->
                              Json.Obj
                                [
                                  ("benchmark", Json.String bench.Exp_common.label);
                                  ("n", Json.Int bench.Exp_common.n);
                                  ( "cells",
                                    Json.List
                                      (List.map
                                         (fun c ->
                                           Json.Obj
                                             [
                                               ("scheduler", Json.String c.scheduler);
                                               ("log10_success", Json.Float c.log10);
                                               ("success", Json.Float c.success);
                                               ("depth", Json.Int c.depth);
                                               ("total_time_ns", Json.Float c.total_ns);
                                               ("compile_ms", Json.Float c.compile_ms);
                                             ])
                                         cells) );
                                ])
                            rows) );
                   ])
               rows_by_topology) );
        ( "headline",
          match headline with
          | None -> Json.Null
          | Some (ordered, total) ->
            Json.Obj
              [
                ("ordered_workloads", Json.Int ordered);
                ("mesh_workloads", Json.Int total);
                ("holds", Json.Bool (ordered > 0));
              ] );
      ]
  in
  let oc = open_out "BENCH_shootout.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_shootout.json\n%!"
