(* §VI-C: validation of the success-rate heuristic against full noisy
   simulation on small circuits — both Monte-Carlo trajectories and the
   exact density-matrix evolution (sampling-noise-free reference). *)

let validate () =
  Exp_common.heading
    "Heuristic validation (§VI-C): eq 4 estimate vs noisy simulation";
  (* Trial count is an env knob so the golden suite can run this driver
     cheaply (and diff stdout across job counts); the default keeps the
     paper-scale behaviour. *)
  let trials =
    match Option.bind (Sys.getenv_opt "FASTSC_VALIDATE_TRIALS") int_of_string_opt with
    | Some t when t > 0 -> t
    | _ -> 300
  in
  let cases =
    [
      ("bv(4)", 4, fun (_ : Device.t) -> Bv.circuit ~n:4 ());
      ("ising(4)", 4, fun _ -> Ising.circuit ~n:4 ());
      ("qaoa(4)", 4, fun _ -> Qaoa.circuit (Rng.create 3) ~n:4 ());
      ("qgan(4)", 4, fun _ -> Qgan.circuit (Rng.create 4) ~n:4 ());
      ("xeb(4,3)", 4, fun d -> Exp_common.xeb_for_device ~cycles:3 d);
      ("bv(6)", 6, fun _ -> Bv.circuit ~n:6 ());
    ]
  in
  let t =
    Tablefmt.create
      [ "circuit"; "algorithm"; "heuristic P"; "trajectories P"; "exact P"; "|log10 gap|" ]
  in
  let gaps = ref [] in
  List.iter
    (fun (label, n, make) ->
      let device = Exp_common.mesh_device n in
      List.iter
        (fun algorithm ->
          let circuit = make device in
          let schedule = Compile.run algorithm device circuit in
          let metrics = Schedule.evaluate schedule in
          let steps = Schedule.to_noisy_steps schedule in
          let n_qubits = Device.n_qubits device in
          let ideal = Noisy_sim.ideal_of_steps ~n_qubits steps in
          let sampled =
            Noisy_sim.average_fidelity (Rng.create 99) ~n_qubits ~ideal ~steps ~trials
          in
          let exact = Density.fidelity_pure (Density.run_steps ~n_qubits steps) ideal in
          let gap =
            if metrics.Schedule.success > 0.0 && exact > 0.0 then
              Float.abs (log10 metrics.Schedule.success -. log10 exact)
            else infinity
          in
          if Float.is_finite gap then gaps := gap :: !gaps;
          Tablefmt.add_row t
            [
              label;
              Compile.algorithm_to_string algorithm;
              Tablefmt.cell_sci ~digits:2 metrics.Schedule.success;
              Tablefmt.cell_sci ~digits:2 sampled;
              Tablefmt.cell_sci ~digits:2 exact;
              Tablefmt.cell_float ~digits:2 gap;
            ])
        [ Compile.Naive; Compile.Uniform; Compile.Color_dynamic ])
    cases;
  Tablefmt.print t;
  Printf.printf
    "mean |log10 gap| vs exact = %.2f over %d cases (heuristic is a worst-case\n\
     estimate, so it should sit at or below the simulated success;\n\
     order-of-magnitude agreement and preserved ranking are what the paper's\n\
     validation requires.  The trajectory column approaches the exact column\n\
     as trials grow — both implement the same channels)\n"
    (Stats.mean !gaps) (List.length !gaps)
