(* Fig 9 (worst-case program success rates, all algorithms) and Fig 10
   (circuit depth and decoherence error).  Also prints the paper's headline
   aggregate: the mean improvement of ColorDynamic over Baseline U. *)

let algorithms = Compile.all_algorithms

let column_labels = List.map Compile.algorithm_to_string algorithms

(* One compile+evaluate sweep shared by both figures, fanned over the domain
   pool one (benchmark x algorithm) cell at a time. *)
let sweep () =
  Exp_common.compile_and_evaluate_grid ~algorithms (Exp_common.full_suite ())

let fig9 ?(results = sweep ()) () =
  Exp_common.heading "Fig 9: log10 worst-case program success rate (higher is better)";
  let t = Tablefmt.create ("benchmark" :: column_labels) in
  List.iter
    (fun (bench, metrics) ->
      Tablefmt.add_row t
        (bench.Exp_common.label
        :: List.map
             (fun (_, m) -> Exp_common.log_cell m.Schedule.log10_success)
             metrics))
    results;
  Tablefmt.print t;
  Printf.printf
    "(the paper omits bars below 1e-4; rows with all columns < -4 correspond to\n\
     the omitted qaoa(16)/ising(16) cases)\n";
  (* headline: mean improvement of ColorDynamic over Baseline U *)
  let ratios =
    List.filter_map
      (fun (_, metrics) ->
        let find a = (List.assoc a metrics).Schedule.success in
        let u = find Compile.Uniform and cd = find Compile.Color_dynamic in
        if u > 0.0 && cd > 0.0 then Some (cd /. u) else None)
      results
  in
  Printf.printf
    "ColorDynamic vs Baseline U: mean improvement %.1fx, geomean %.1fx (paper: 13.3x mean)\n"
    (Stats.mean ratios) (Stats.geomean ratios)

let fig10 ?(results = sweep ()) () =
  Exp_common.heading "Fig 10 (left): circuit depth (scheduled steps, lower is better)";
  let t = Tablefmt.create ("benchmark" :: column_labels) in
  List.iter
    (fun (bench, metrics) ->
      Tablefmt.add_row t
        (bench.Exp_common.label
        :: List.map (fun (_, m) -> Tablefmt.cell_int m.Schedule.depth) metrics))
    results;
  Tablefmt.print t;
  Exp_common.heading
    "Fig 10 (right): decoherence error as -log10 survival (lower is better)";
  let t = Tablefmt.create ("benchmark" :: column_labels) in
  List.iter
    (fun (bench, metrics) ->
      Tablefmt.add_row t
        (bench.Exp_common.label
        :: List.map
             (fun (_, m) ->
               Tablefmt.cell_float ~digits:2 (-.m.Schedule.log10_decoherence_survival))
             metrics))
    results;
  Tablefmt.print t;
  let ratio_vs reference =
    Stats.mean
      (List.filter_map
         (fun (_, metrics) ->
           let find a = -.(List.assoc a metrics).Schedule.log10_decoherence_survival in
           let r = find reference and cd = find Compile.Color_dynamic in
           if r > 0.0 then Some (cd /. r) else None)
         results)
  in
  Printf.printf
    "ColorDynamic decoherence vs Baseline G: %.2fx (paper: 1.02x); vs Baseline U: %.2fx (paper: 0.90x)\n"
    (ratio_vs Compile.Gmon) (ratio_vs Compile.Uniform)

let both () =
  let results = sweep () in
  fig9 ~results ();
  fig10 ~results ()
