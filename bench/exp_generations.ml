(* Hardware-generation sensitivity: how the paper's conclusion ages as
   coherence improves.  Serialization is only expensive while decoherence is
   fast; on long-coherence hardware the gap between frequency-aware
   parallelism and conservative serialization narrows — while the gap to the
   crosstalk-unaware baseline stays catastrophic at any generation. *)

let generations () =
  Exp_common.heading "Extension: the conclusion across hardware generations";
  let presets =
    [ ("early-nisq", `Early_nisq); ("sycamore-era", `Sycamore_era); ("modern", `Modern) ]
  in
  let t =
    Tablefmt.create
      [
        "generation"; "benchmark"; "N log10"; "U log10"; "CD log10"; "CD/U (decades)";
      ]
  in
  let bench_names = [ "xeb"; "bv"; "qgan" ] in
  let cells =
    List.concat_map
      (fun (label, preset) ->
        List.mapi (fun i bench_name -> (label, preset, i, bench_name)) bench_names)
      presets
  in
  let results =
    Exp_common.grid
      (fun (label, preset, i, bench_name) ->
        let params = Device.preset preset in
        let device =
          Device.create ~params ~seed:Exp_common.device_seed (Topology.grid 4 4)
        in
        let bench = Exp_common.benchmark bench_name 16 in
        let circuit = bench.Exp_common.make device in
        let run algorithm =
          (Schedule.evaluate (Compile.run algorithm device circuit)).Schedule.log10_success
        in
        (label, i, bench.Exp_common.label, run Compile.Naive, run Compile.Uniform,
         run Compile.Color_dynamic))
      cells
  in
  List.iter
    (fun (label, i, bench_label, n, u, cd) ->
      Tablefmt.add_row t
        [
          (if i = 0 then label else "");
          bench_label;
          Exp_common.log_cell n;
          Exp_common.log_cell u;
          Exp_common.log_cell cd;
          Tablefmt.cell_float ~digits:2 (cd -. u);
        ];
      if i = List.length bench_names - 1 then Tablefmt.add_separator t)
    results;
  Tablefmt.print t;
  Printf.printf
    "(the CD-vs-U gap shrinks as coherence improves — parallelism buys less when\n\
     idling is cheap — while crosstalk-unaware compilation stays catastrophic on\n\
     every generation: frequency awareness remains necessary, serialization\n\
     stops being a competitive substitute only on weak hardware)\n"
