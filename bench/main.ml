(* Experiment dispatcher: regenerates every table and figure of the paper.
   Run everything with `dune exec bench/main.exe`, or one experiment by name:
   `dune exec bench/main.exe -- fig9`. *)

let experiments =
  [
    ("fig2", "interaction strength vs detuning", Exp_physics.fig2);
    ("fig4", "transmon spectrum vs flux", Exp_physics.fig4);
    ("fig6", "worked example (toy program)", Exp_fig6.fig6);
    ("fig7", "crosstalk-graph coloring", Exp_fig7.fig7);
    ("fig9", "worst-case success rates", fun () -> Exp_success.fig9 ());
    ("fig10", "depth and decoherence", fun () -> Exp_success.fig10 ());
    ("fig11", "tunability sweet spot", Exp_tunability.fig11);
    ("fig12", "gmon residual coupling", Exp_gmon.fig12);
    ("fig13", "general connectivity", Exp_connectivity.fig13);
    ("fig14", "example frequency maps", Exp_freqmap.fig14);
    ("fig15", "two-transmon transitions", Exp_physics.fig15);
    ("table2", "benchmark characteristics", Exp_table2.table2);
    ("scalability", "compile time vs size", Exp_connectivity.scalability);
    ("seeds", "fabrication robustness sweep", Exp_seeds.robustness);
    ("validate", "heuristic vs noisy simulation", Exp_validate.validate);
    ("audit", "microscopic 3-level step audit", Exp_audit.audit);
    ("ablate-coloring", "coloring heuristic ablation", Exp_ablations.coloring);
    ("ablate-decompose", "decomposition ablation", Exp_ablations.decomposition);
    ("ablate-distance", "crosstalk distance ablation", Exp_ablations.distance);
    ("ablate-threshold", "conflict threshold ablation", Exp_ablations.threshold);
    ("ablate-optimize", "peephole optimizer ablation", Exp_ablations.optimize);
    ("ablate-router", "SWAP router ablation", Exp_ablations.router);
    ("time", "bechamel timing suite", Exp_timing.run);
    ("sim", "simulation kernel microbenchmark", Exp_sim.run);
    ("smt-scale", "SMT decomposition scaling benchmark", Exp_smt_scale.run);
    ("shootout", "cross-compiler shootout: scheduler zoo x topology zoo", Exp_shootout.run);
    ("ext-bench", "extension: GHZ/QFT workloads", Exp_extensions.extra_benchmarks);
    ("ext-lattices", "extension: heavy-hex/octagonal", Exp_extensions.machine_lattices);
    ("ext-pulses", "extension: pulse lowering stats", Exp_extensions.pulse_lowering);
    ("ext-anneal", "extension: snake-style annealing comparison", Exp_extensions.snake_comparison);
    ("ext-generations", "extension: hardware generations", Exp_generations.generations);
  ]

(* `fig9` and `fig10` share one sweep when running everything. *)
let run_all () =
  Exp_physics.fig2 ();
  Exp_physics.fig4 ();
  Exp_fig6.fig6 ();
  Exp_fig7.fig7 ();
  Exp_success.both ();
  Exp_tunability.fig11 ();
  Exp_gmon.fig12 ();
  Exp_connectivity.fig13 ();
  Exp_freqmap.fig14 ();
  Exp_physics.fig15 ();
  Exp_table2.table2 ();
  Exp_connectivity.scalability ();
  Exp_seeds.robustness ();
  Exp_validate.validate ();
  Exp_audit.audit ();
  Exp_ablations.all ();
  Exp_extensions.all ();
  Exp_generations.generations ();
  Exp_timing.run ();
  Exp_sim.run ();
  Exp_smt_scale.run ();
  Exp_shootout.run ()

let usage () =
  print_endline "usage: main.exe [--jobs N] [experiment...]";
  print_endline "available experiments:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr) experiments;
  print_endline "  all                everything (default)";
  print_endline
    "  --jobs N | -j N    domains for the sweep grid (default: cores - 1,\n\
    \                     or the FASTSC_JOBS environment variable)"

(* Strip --jobs/-j from the argument list before experiment dispatch.  The
   chosen parallelism is announced on stderr (and per heading): stdout is the
   determinism surface and must be byte-identical at any job count. *)
let parse_jobs args =
  let rec go acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: value :: rest -> (
      match int_of_string_opt value with
      | Some j when j >= 1 ->
        Pool.set_default_jobs j;
        go acc rest
      | _ ->
        Printf.eprintf "--jobs needs a positive integer, got %S\n" value;
        exit 1)
    | [ ("--jobs" | "-j") ] ->
      Printf.eprintf "--jobs needs a value\n";
      exit 1
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let () =
  let args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  Printf.eprintf "parallelism: %d jobs (override with --jobs N or FASTSC_JOBS)\n%!"
    (Pool.default_jobs ());
  match args with
  | [] | [ "all" ] -> run_all ()
  | args ->
    List.iter
      (fun arg ->
        match List.find_opt (fun (name, _, _) -> name = arg) experiments with
        | Some (_, _, run) -> run ()
        | None ->
          if arg = "--help" || arg = "-h" then usage ()
          else begin
            Printf.printf "unknown experiment: %s\n" arg;
            usage ();
            exit 1
          end)
      args
