(* Simulation-kernel microbenchmark: the flat-float state-vector kernels
   against the boxed Statevector_ref baseline, Monte-Carlo trajectory
   throughput through the domain pool, and the density superoperator loop.
   Emits BENCH_sim.json so kernel throughput is tracked across commits like
   the compiler timings (BENCH_timing.json).

   Env knobs (all optional; the `make bench-sim` smoke run shrinks them):
     FASTSC_SIM_QUBITS          state size for the gate kernels (default 16)
     FASTSC_SIM_TRIALS          trajectory batch size (default 200)
     FASTSC_SIM_DENSITY_QUBITS  density-matrix size (default 6)
     FASTSC_SIM_BUDGET_MS       min measuring time per kernel (default 300) *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

(* Seconds per run: repeat the thunk, growing the batch until it fills the
   measuring budget, like bechamel's quota but without the harness weight. *)
let time_per_run ~budget f =
  f ();
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < budget && reps < 1 lsl 20 then go (reps * 4) else dt /. float_of_int reps
  in
  go 1

let fmt_ns ns =
  if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Dense test unitaries (every entry exercises both the re and im paths). *)
let u1 =
  let s = 1.0 /. sqrt 2.0 in
  let e t = Complex_ext.scale s (Complex_ext.exp_i t) in
  Matrix.of_arrays [| [| e 0.0; e (-0.7) |]; [| e 0.7; e Float.pi |] |]

let u2 = Noisy_sim.exchange_unitary 0.37

let run () =
  Exp_common.heading "Simulation kernels: flat float arrays vs boxed baseline";
  let n = env_int "FASTSC_SIM_QUBITS" 16 in
  let trials = env_int "FASTSC_SIM_TRIALS" 200 in
  let dn = env_int "FASTSC_SIM_DENSITY_QUBITS" 6 in
  let budget = float_of_int (env_int "FASTSC_SIM_BUDGET_MS" 300) /. 1000.0 in

  (* Gate kernels: one run = the gate applied once to every qubit (resp.
     every neighbouring pair), so ns/gate divides by the application count. *)
  let flat = Statevector.create n and boxed = Statevector_ref.create n in
  let per_gate1 state apply =
    let run_all () =
      for q = 0 to n - 1 do
        apply state u1 q
      done
    in
    time_per_run ~budget run_all *. 1e9 /. float_of_int n
  in
  let per_gate2 state apply =
    let run_all () =
      for q = 0 to n - 2 do
        apply state u2 q (q + 1)
      done
    in
    time_per_run ~budget run_all *. 1e9 /. float_of_int (n - 1)
  in
  let flat1 = per_gate1 flat Statevector.apply_matrix1 in
  let boxed1 = per_gate1 boxed Statevector_ref.apply_matrix1 in
  let flat2 = per_gate2 flat Statevector.apply_matrix2 in
  let boxed2 = per_gate2 boxed Statevector_ref.apply_matrix2 in
  let speedup1 = boxed1 /. flat1 and speedup2 = boxed2 /. flat2 in

  (* Trajectory batch: the validation workload end to end — compile a small
     circuit, lower to noisy steps, fan the Monte-Carlo trials over the
     pool. *)
  let device = Exp_common.mesh_device 4 in
  let circuit = Bv.circuit ~n:4 () in
  let schedule = Compile.run Compile.Color_dynamic device circuit in
  let steps = Schedule.to_noisy_steps schedule in
  let traj_qubits = Device.n_qubits device in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:traj_qubits steps in
  let mean = ref 0.0 in
  let traj_seconds =
    time_per_run ~budget (fun () ->
        mean :=
          Noisy_sim.average_fidelity (Rng.create 99) ~n_qubits:traj_qubits ~ideal ~steps ~trials)
  in
  let trials_per_sec = float_of_int trials /. traj_seconds in

  (* Density superoperator loop: one run = a dense unitary conjugation plus
     an amplitude-damping channel on every qubit of a dn-qubit matrix. *)
  let rho = Density.create dn in
  let damping = Density.amplitude_damping ~gamma:0.01 in
  let density_ns =
    time_per_run ~budget (fun () ->
        for q = 0 to dn - 1 do
          Density.apply_unitary1 rho u1 q;
          Density.apply_kraus1 rho damping q
        done)
    *. 1e9
    /. float_of_int dn
  in

  let t = Tablefmt.create [ "kernel"; "flat"; "boxed"; "speedup" ] in
  Tablefmt.add_row t
    [
      Printf.sprintf "apply_matrix1 (%dq, per gate)" n;
      fmt_ns flat1;
      fmt_ns boxed1;
      Printf.sprintf "%.1fx" speedup1;
    ];
  Tablefmt.add_row t
    [
      Printf.sprintf "apply_matrix2 (%dq, per gate)" n;
      fmt_ns flat2;
      fmt_ns boxed2;
      Printf.sprintf "%.1fx" speedup2;
    ];
  Tablefmt.print t;
  Printf.printf "trajectories: %d trials of bv(4) in %.3f s (%.0f trials/s, mean fidelity %.4f)\n"
    trials traj_seconds trials_per_sec !mean;
  Printf.printf "density: unitary + amplitude-damping channel on %d qubits, %s per qubit-op\n" dn
    (fmt_ns density_ns);

  let doc =
    Json.Obj
      [
        ("label", Json.String "sim");
        ("jobs", Json.Int (Pool.default_jobs ()));
        ("qubits", Json.Int n);
        ( "gate_kernels",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "apply_matrix1");
                  ("ns_per_gate_flat", Json.Float flat1);
                  ("ns_per_gate_boxed", Json.Float boxed1);
                  ("speedup", Json.Float speedup1);
                ];
              Json.Obj
                [
                  ("name", Json.String "apply_matrix2");
                  ("ns_per_gate_flat", Json.Float flat2);
                  ("ns_per_gate_boxed", Json.Float boxed2);
                  ("speedup", Json.Float speedup2);
                ];
            ] );
        ( "trajectories",
          Json.Obj
            [
              ("n_qubits", Json.Int traj_qubits);
              ("trials", Json.Int trials);
              ("seconds", Json.Float traj_seconds);
              ("trials_per_sec", Json.Float trials_per_sec);
              ("mean_fidelity", Json.Float !mean);
            ] );
        ( "density",
          Json.Obj [ ("qubits", Json.Int dn); ("ns_per_qubit_op", Json.Float density_ns) ] );
      ]
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_sim.json\n%!"
