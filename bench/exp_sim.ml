(* Simulation-kernel microbenchmark: the Bigarray state-vector kernels
   against the boxed Statevector_ref baseline, the tier-2 engine (gate
   fusion + blocked kernels + amplitude-range sharding) against gate-at-a-
   time application on a deep ≥20-qubit workload, Monte-Carlo trajectory
   throughput through the domain pool, and the density superoperator loop.
   Emits BENCH_sim.json so kernel throughput is tracked across commits like
   the compiler timings (BENCH_timing.json).

   Env knobs (all optional; the `make bench-sim` smoke run shrinks them):
     FASTSC_SIM_QUBITS          state size for the flat-vs-boxed kernels (default 16)
     FASTSC_SIM_BIG_QUBITS      state size for the fused/sharded engine row (default 20)
     FASTSC_SIM_CYCLES          brickwork cycles in the big workload (default 3)
     FASTSC_SIM_TRIALS          trajectory batch size (default 200)
     FASTSC_SIM_TRAJ_QUBITS     trajectory workload size (default 12)
     FASTSC_SIM_DENSITY_QUBITS  density-matrix size (default 8, capped at 10)
     FASTSC_SIM_BUDGET_MS       min measuring time per kernel (default 300)
     FASTSC_SIM_FUSION          0 = diagnostic: replay the big workload
                                gate-at-a-time in the fused rows too *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

(* Seconds per run: repeat the thunk, growing the batch until it fills the
   measuring budget, like bechamel's quota but without the harness weight. *)
let time_per_run ~budget f =
  f ();
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < budget && reps < 1 lsl 20 then go (reps * 4) else dt /. float_of_int reps
  in
  go 1

let fmt_ns ns =
  if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Dense test unitaries (every entry exercises both the re and im paths). *)
let u1 =
  let s = 1.0 /. sqrt 2.0 in
  let e t = Complex_ext.scale s (Complex_ext.exp_i t) in
  Matrix.of_arrays [| [| e 0.0; e (-0.7) |]; [| e 0.7; e Float.pi |] |]

let u2 = Noisy_sim.exchange_unitary 0.37

(* The big-section workload: [cycles] brickwork layers — two rotation layers
   (Rz then Ry, angles from a fixed seed so no fused product is the exact
   identity) followed by one sqrt-iSWAP layer on alternating even/odd
   neighbour pairings.  The canonical fusion shape: every 1q run is adjacent
   to a 2q gate that can absorb it. *)
let brickwork ~n ~cycles =
  let rng = Rng.create 41 in
  let b = Circuit.builder n in
  for cycle = 0 to cycles - 1 do
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Rz (Rng.float rng *. 6.0 +. 0.1)) [ q ]
    done;
    for q = 0 to n - 1 do
      Circuit.add b (Gate.Ry (Rng.float rng *. 6.0 +. 0.1)) [ q ]
    done;
    let first = cycle land 1 in
    let q = ref first in
    while !q + 1 < n do
      Circuit.add b Gate.Sqrt_iswap [ !q; !q + 1 ];
      q := !q + 2
    done
  done;
  Circuit.finish b

let run () =
  Exp_common.heading "Simulation kernels: flat float arrays vs boxed baseline";
  let n = env_int "FASTSC_SIM_QUBITS" 16 in
  let big_n = min 24 (max 2 (env_int "FASTSC_SIM_BIG_QUBITS" 20)) in
  let cycles = env_int "FASTSC_SIM_CYCLES" 3 in
  let trials = env_int "FASTSC_SIM_TRIALS" 200 in
  let traj_n = max 2 (env_int "FASTSC_SIM_TRAJ_QUBITS" 12) in
  let dn = min 10 (env_int "FASTSC_SIM_DENSITY_QUBITS" 8) in
  let budget = float_of_int (env_int "FASTSC_SIM_BUDGET_MS" 300) /. 1000.0 in
  let fusion_on = env_int "FASTSC_SIM_FUSION" 1 > 0 in

  (* Gate kernels: one run = the gate applied once to every qubit (resp.
     every neighbouring pair), so ns/gate divides by the application count. *)
  let flat = Statevector.create n and boxed = Statevector_ref.create n in
  let per_gate1 state apply =
    let run_all () =
      for q = 0 to n - 1 do
        apply state u1 q
      done
    in
    time_per_run ~budget run_all *. 1e9 /. float_of_int n
  in
  let per_gate2 state apply =
    let run_all () =
      for q = 0 to n - 2 do
        apply state u2 q (q + 1)
      done
    in
    time_per_run ~budget run_all *. 1e9 /. float_of_int (n - 1)
  in
  let flat1 = per_gate1 flat (fun s m q -> Statevector.apply_matrix1 ~jobs:1 s m q) in
  let boxed1 = per_gate1 boxed Statevector_ref.apply_matrix1 in
  let flat2 = per_gate2 flat (fun s m a b -> Statevector.apply_matrix2 ~jobs:1 s m a b) in
  let boxed2 = per_gate2 boxed Statevector_ref.apply_matrix2 in
  let speedup1 = boxed1 /. flat1 and speedup2 = boxed2 /. flat2 in

  let t = Tablefmt.create [ "kernel"; "flat"; "boxed"; "speedup" ] in
  Tablefmt.add_row t
    [
      Printf.sprintf "apply_matrix1 (%dq, per gate)" n;
      fmt_ns flat1;
      fmt_ns boxed1;
      Printf.sprintf "%.1fx" speedup1;
    ];
  Tablefmt.add_row t
    [
      Printf.sprintf "apply_matrix2 (%dq, per gate)" n;
      fmt_ns flat2;
      fmt_ns boxed2;
      Printf.sprintf "%.1fx" speedup2;
    ];
  Tablefmt.print t;

  (* Tier-2 engine on the deep workload: gate-at-a-time serial vs fused
     replay vs fused replay with amplitude-range sharding at the default job
     count.  All three rows divide by *source* gates, so they are directly
     comparable per-gate costs of the same circuit. *)
  Exp_common.heading
    (Printf.sprintf "Tier-2 engine: %d-qubit brickwork, %d cycles" big_n cycles);
  let circuit = brickwork ~n:big_n ~cycles in
  let total_gates = Circuit.length circuit in
  let plan = Fusion.plan circuit in
  let state = Statevector.create big_n in
  let gates = float_of_int total_gates in
  let big_flat =
    time_per_run ~budget (fun () -> Statevector.run ~jobs:1 state circuit) *. 1e9 /. gates
  in
  let big_fused =
    time_per_run ~budget (fun () ->
        if fusion_on then Fusion.apply ~jobs:1 state plan
        else Statevector.run ~jobs:1 state circuit)
    *. 1e9 /. gates
  in
  let big_sharded =
    time_per_run ~budget (fun () ->
        if fusion_on then Fusion.apply state plan else Statevector.run state circuit)
    *. 1e9 /. gates
  in
  (* Lone 2q gate at the big size: the sharding row of the acceptance
     criterion, plus the jobs-1-vs-4 bit-identity witness on the same gate. *)
  let lone_serial =
    time_per_run ~budget (fun () -> Statevector.apply_matrix2 ~jobs:1 state u2 0 (big_n - 1))
    *. 1e9
  in
  let lone_sharded =
    time_per_run ~budget (fun () -> Statevector.apply_matrix2 state u2 0 (big_n - 1)) *. 1e9
  in
  let bit_identical =
    let a = Statevector.copy state and b = Statevector.copy state in
    Statevector.apply_matrix2 ~jobs:1 a u2 0 (big_n - 1);
    Statevector.apply_matrix2 ~jobs:4 b u2 0 (big_n - 1);
    let are, aim = Statevector.buffers a and bre, bim = Statevector.buffers b in
    let ok = ref true in
    for k = 0 to (1 lsl big_n) - 1 do
      if
        Int64.bits_of_float are.{k} <> Int64.bits_of_float bre.{k}
        || Int64.bits_of_float aim.{k} <> Int64.bits_of_float bim.{k}
      then ok := false
    done;
    !ok
  in
  let t2 = Tablefmt.create [ "engine"; "ns/gate"; "vs flat" ] in
  Tablefmt.add_row t2 [ "flat (gate-at-a-time, serial)"; fmt_ns big_flat; "1.0x" ];
  Tablefmt.add_row t2
    [ "fused (serial)"; fmt_ns big_fused; Printf.sprintf "%.1fx" (big_flat /. big_fused) ];
  Tablefmt.add_row t2
    [
      "fused+blocked+sharded";
      fmt_ns big_sharded;
      Printf.sprintf "%.1fx" (big_flat /. big_sharded);
    ];
  Tablefmt.print t2;
  Printf.printf "fusion: %d source gates -> %d fused ops; lone 2q %s serial / %s sharded%s\n"
    total_gates (Fusion.length plan) (fmt_ns lone_serial) (fmt_ns lone_sharded)
    (if bit_identical then " (bit-identical at jobs 1 vs 4)" else " (BIT MISMATCH jobs 1 vs 4)");

  (* Trajectory batch: the validation workload end to end — compile a
     circuit, lower to noisy steps, fan the Monte-Carlo trials over the
     pool. *)
  let device = Exp_common.mesh_device traj_n in
  let circuit = Bv.circuit ~n:traj_n () in
  let schedule = Compile.run Compile.Color_dynamic device circuit in
  let steps = Schedule.to_noisy_steps schedule in
  let traj_qubits = Device.n_qubits device in
  let ideal = Noisy_sim.ideal_of_steps ~n_qubits:traj_qubits steps in
  let mean = ref 0.0 in
  let traj_seconds =
    time_per_run ~budget (fun () ->
        mean :=
          Noisy_sim.average_fidelity (Rng.create 99) ~n_qubits:traj_qubits ~ideal ~steps ~trials)
  in
  let trials_per_sec = float_of_int trials /. traj_seconds in

  (* Density superoperator loop: one run = a dense unitary conjugation plus
     an amplitude-damping channel on every qubit of a dn-qubit matrix. *)
  let rho = Density.create dn in
  let damping = Density.amplitude_damping ~gamma:0.01 in
  let density_ns =
    time_per_run ~budget (fun () ->
        for q = 0 to dn - 1 do
          Density.apply_unitary1 rho u1 q;
          Density.apply_kraus1 rho damping q
        done)
    *. 1e9
    /. float_of_int dn
  in

  Printf.printf
    "trajectories: %d trials of bv(%d) in %.3f s (%.0f trials/s, mean fidelity %.4f)\n" trials
    traj_qubits traj_seconds trials_per_sec !mean;
  Printf.printf "density: unitary + amplitude-damping channel on %d qubits, %s per qubit-op\n" dn
    (fmt_ns density_ns);

  let doc =
    Json.Obj
      [
        ("label", Json.String "sim");
        ("jobs", Json.Int (Pool.default_jobs ()));
        ("qubits", Json.Int n);
        ( "gate_kernels",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "apply_matrix1");
                  ("ns_per_gate_flat", Json.Float flat1);
                  ("ns_per_gate_boxed", Json.Float boxed1);
                  ("speedup", Json.Float speedup1);
                ];
              Json.Obj
                [
                  ("name", Json.String "apply_matrix2");
                  ("ns_per_gate_flat", Json.Float flat2);
                  ("ns_per_gate_boxed", Json.Float boxed2);
                  ("speedup", Json.Float speedup2);
                ];
            ] );
        ( "engine",
          Json.Obj
            [
              ("qubits", Json.Int big_n);
              ("cycles", Json.Int cycles);
              ("cycle_gates", Json.Int total_gates);
              ("fused_instrs", Json.Int (Fusion.length plan));
              ("fusion_enabled", Json.Bool fusion_on);
              ("ns_per_gate_flat", Json.Float big_flat);
              ("ns_per_gate_fused", Json.Float big_fused);
              ("ns_per_gate_fused_sharded", Json.Float big_sharded);
              ("speedup_fused_vs_flat", Json.Float (big_flat /. big_fused));
              ("speedup_total_vs_flat", Json.Float (big_flat /. big_sharded));
              ( "lone_2q",
                Json.Obj
                  [
                    ("ns_serial", Json.Float lone_serial);
                    ("ns_sharded", Json.Float lone_sharded);
                    ("sharded_bit_identical", Json.Bool bit_identical);
                  ] );
            ] );
        ( "trajectories",
          Json.Obj
            [
              ("n_qubits", Json.Int traj_qubits);
              ("trials", Json.Int trials);
              ("seconds", Json.Float traj_seconds);
              ("trials_per_sec", Json.Float trials_per_sec);
              ("mean_fidelity", Json.Float !mean);
            ] );
        ( "density",
          Json.Obj [ ("qubits", Json.Int dn); ("ns_per_qubit_op", Json.Float density_ns) ] );
      ]
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_sim.json\n%!"
